// Package serve implements the mc3serve HTTP daemon as a reusable library:
// a Server answers stateless /solve requests and stateful incremental
// sessions over one process-wide component-solution cache, with
// request-scoped observability (X-Request-ID propagation, flight-recorder
// tracing, RED metrics). cmd/mc3serve wraps it in flag parsing and signal
// handling; internal/cluster spawns fleets of them as shard processes behind
// a consistent-hash router.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bipartite"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/prep"
	"repro/internal/selector"
	"repro/internal/solver"
	"repro/internal/textio"
)

// Config is the daemon configuration. The zero value is not usable; start
// from DefaultConfig.
type Config struct {
	Algo         string  // algorithm: auto|ktwo|general|short-first|portfolio
	WSC          string  // Algorithm 3 set-cover engine
	Prep         string  // preprocessing level: full|minimal
	Engine       string  // Algorithm 2 max-flow engine
	Parallel     int     // components solved concurrently per request
	CacheSize    int     // component-solution cache entries (0 disables)
	CacheQuantum float64 // cost quantum for cache keys
	ReqTimeout   time.Duration
	MaxBody      int64
	// MaxLoadQueries rejects /load bodies above this many queries with a
	// 413 pointing at the streamed CLI path (mc3solve -stream): a session
	// holds the materialized instance for its whole lifetime, so loads past
	// this size belong in the streaming solver, not a serving daemon.
	// 0 disables the check.
	MaxLoadQueries int
	Validate       bool
	MaxSessions    int
	Flight       int // span trees retained by the flight recorder (0 disables)
	SelectorPath string

	// SlowW, when non-nil, receives the slow/failed-request JSONL stream
	// (requires Flight > 0); SlowThreshold is the capture latency bound.
	SlowW         io.Writer
	SlowThreshold time.Duration
	// FeatureW, when non-nil, receives the per-component feature JSONL
	// stream.
	FeatureW io.Writer
}

// DefaultConfig returns the configuration matching mc3serve's flag defaults.
func DefaultConfig() Config {
	return Config{
		Algo:          "auto",
		WSC:           "auto",
		Prep:          "full",
		Engine:        "dinic",
		Parallel:      -1,
		CacheSize:     cache.DefaultMaxEntries,
		ReqTimeout:     30 * time.Second,
		MaxBody:        8 << 20,
		MaxLoadQueries: 100_000,
		Validate:       true,
		MaxSessions:   64,
		Flight:        256,
		SlowThreshold: time.Second,
	}
}

// Server is the HTTP handler: immutable solver configuration plus the shared
// mutable state (cache, metrics, counters). Safe for concurrent requests.
type Server struct {
	cfg      Config
	opts     solver.Options // template; Context is set per request
	cache    *cache.Cache   // nil when CacheSize == 0
	registry *obs.Registry
	tracer   *obs.Tracer         // the request tracer (== opts.Tracer)
	flight   *obs.FlightRecorder // nil when Flight == 0
	harvest  *obs.HarvestSink    // nil when no FeatureW
	mux      *http.ServeMux
	started  time.Time
	bootID   string // request-ID prefix, unique per process
	sessions sessions

	// solveSecsAll aggregates solve latency across endpoints (the
	// pre-existing mc3serve_solve_seconds family); solveSecs holds the
	// per-endpoint split series.
	solveSecsAll *obs.Histogram
	solveSecs    map[string]*obs.Histogram

	requests atomic.Int64
	errored  atomic.Int64
	reqSeq   atomic.Int64
	draining atomic.Bool
}

// New validates cfg and assembles the handler. The tracer (nil for none)
// receives every request's span tree in addition to the server's own sinks.
func New(cfg Config, tracer *obs.Tracer) (*Server, error) {
	opts, err := buildOptions(cfg)
	if err != nil {
		return nil, err
	}
	if err := checkAlgo(cfg.Algo); err != nil {
		return nil, err
	}
	if cfg.SlowW != nil && cfg.Flight <= 0 {
		return nil, fmt.Errorf("slow-query capture requires the flight recorder (Flight > 0)")
	}
	reg := obs.NewRegistry()
	reg.Publish("mc3serve")
	s := &Server{
		cfg:      cfg,
		opts:     opts,
		registry: reg,
		started:  time.Now(),
		sessions: sessions{m: make(map[string]*session), max: cfg.MaxSessions},
	}
	s.bootID = strconv.FormatInt(s.started.UnixNano(), 36)
	if cfg.CacheSize > 0 {
		s.cache = cache.New(cache.Config{
			MaxEntries:  cfg.CacheSize,
			CostQuantum: cfg.CacheQuantum,
			Metrics:     reg,
		})
	}
	s.opts.Cache = s.cache

	// The request tracer: caller sinks (-spans etc.), then the flight
	// recorder and the feature harvester, then the metrics registry. One
	// tracer serves every request; the per-request root span opened by
	// instrument() fans out to all of them.
	if cfg.Flight > 0 {
		s.flight = obs.NewFlightRecorder(cfg.Flight)
		if cfg.SlowW != nil {
			s.flight.SetSlowLog(cfg.SlowW, cfg.SlowThreshold)
		}
		tracer = tracer.WithSink(s.flight)
	}
	if cfg.FeatureW != nil {
		s.harvest = obs.NewHarvestSink(cfg.FeatureW, "mc3serve")
		tracer = tracer.WithSink(s.harvest)
		s.opts.FeatureAttrs = true
	}
	s.opts.Tracer = tracer.WithMetrics(reg)
	s.tracer = s.opts.Tracer

	s.solveSecsAll = reg.Histogram("mc3serve_solve_seconds")
	s.solveSecs = map[string]*obs.Histogram{
		"solve": reg.Histogram(`mc3serve_solve_seconds{endpoint="solve"}`),
		"load":  reg.Histogram(`mc3serve_solve_seconds{endpoint="load"}`),
		"delta": reg.Histogram(`mc3serve_solve_seconds{endpoint="delta"}`),
	}

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /solve", s.instrument("solve", s.handleSolve))
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.Handle("GET /metrics", reg)
	s.mux.HandleFunc("POST /load", s.instrument("load", s.handleLoad))
	s.mux.HandleFunc("POST /session/{id}/delta", s.instrument("delta", s.handleDelta))
	s.mux.HandleFunc("GET /session/{id}/solution", s.instrument("solution", s.handleSolution))
	s.mux.HandleFunc("DELETE /session/{id}", s.instrument("session_delete", s.handleSessionDelete))
	s.mux.HandleFunc("GET /debug/requests", s.handleDebugRequests)
	s.mux.HandleFunc("GET /debug/trace/{id}", s.handleDebugTrace)
	return s, nil
}

// StartDrain flips the server into drain mode: /readyz (and every other
// endpoint) answers 503 + Retry-After so routers and load balancers stop
// sending new work while in-flight requests complete. Irreversible.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Draining reports whether StartDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Counts returns the lifetime request and error totals.
func (s *Server) Counts() (requests, errors int64) {
	return s.requests.Load(), s.errored.Load()
}

// CacheStats snapshots the process-wide component-solution cache counters.
func (s *Server) CacheStats() cache.Stats { return s.cache.Stats() }

// ServeHTTP dispatches requests; once the server is draining for shutdown
// every request is answered 503 + Retry-After immediately instead of
// racing the listener teardown.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", "5")
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "server is draining"})
		return
	}
	s.mux.ServeHTTP(w, r)
}

// handleReady answers GET /readyz: readiness, as distinct from /healthz
// liveness. It flips to 503 the moment a drain starts (the global drain
// check above answers first), so a router's health prober marks the shard
// unready before the listener closes.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", "5")
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "server is draining"})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ready\n")
}

// solveResponse is the /solve success document.
type solveResponse struct {
	Cost         float64    `json:"cost"`
	Classifiers  [][]string `json:"classifiers"`
	Queries      int        `json:"queries"`
	Seconds      float64    `json:"seconds"`
	Algorithm    string     `json:"algorithm"`
	CacheHitRate float64    `json:"cache_hit_rate"`
}

// errorResponse is the JSON error document for non-2xx answers.
type errorResponse struct {
	Error string `json:"error"`
}

// statusClientClosedRequest is nginx's conventional code for a request whose
// client went away before the answer was ready.
const statusClientClosedRequest = 499

// bodyBufPool recycles the request-body staging buffers of /solve and /load.
// Decoding straight off the wire made every request pay the JSON decoder's
// internal read-buffer churn; staging through a pooled buffer makes the
// steady-state serving path allocation-free on the transport side.
var bodyBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// bodyBufKeep caps the capacity of buffers returned to the pool, so one
// max-body-sized request doesn't pin megabytes for the daemon's lifetime.
const bodyBufKeep = 1 << 20

// readInstance reads and parses a request body holding an instance file,
// staging it through a pooled buffer. The returned File does not alias the
// buffer (textio.Read copies what it keeps).
func (s *Server) readInstance(w http.ResponseWriter, r *http.Request) (*textio.File, error) {
	buf := bodyBufPool.Get().(*bytes.Buffer)
	defer func() {
		if buf.Cap() <= bodyBufKeep {
			buf.Reset()
			bodyBufPool.Put(buf)
		}
	}()
	buf.Reset()
	if _, err := buf.ReadFrom(http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)); err != nil {
		return nil, err
	}
	return textio.Read(bytes.NewReader(buf.Bytes()))
}

// failParse maps an instance-parse error to its HTTP status and answers it.
func (s *Server) failParse(w http.ResponseWriter, err error) {
	code := http.StatusBadRequest
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		code = http.StatusRequestEntityTooLarge
	}
	s.fail(w, code, fmt.Errorf("parse instance: %w", err))
}

// handleSolve answers POST /solve: parse the instance, solve it under the
// request's deadline with the shared cache, answer JSON.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	s.registry.Counter("mc3serve_requests_total").Inc()

	file, err := s.readInstance(w, r)
	if err != nil {
		s.failParse(w, err)
		return
	}
	_, inst, err := file.Build(core.Options{})
	if err != nil {
		s.fail(w, http.StatusUnprocessableEntity, fmt.Errorf("build instance: %w", err))
		return
	}
	fn, algoName := pickAlgorithm(s.cfg.Algo, inst, s.opts)

	// The solve runs under the request context — a dropped connection
	// cancels it — additionally bounded by the configured timeout. The
	// cancellation checkpoints throughout the solver stack make both
	// effective mid-solve.
	opts := s.opts
	opts.Context = r.Context()
	opts.Timeout = s.cfg.ReqTimeout
	opts.Validate = s.cfg.Validate

	start := time.Now()
	sol, err := fn(inst, opts)
	elapsed := time.Since(start)
	s.observeSolve("solve", elapsed.Seconds())
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			s.fail(w, http.StatusGatewayTimeout, fmt.Errorf("solve exceeded %v", s.cfg.ReqTimeout))
		case errors.Is(err, context.Canceled):
			s.fail(w, statusClientClosedRequest, errors.New("client closed request"))
		default:
			s.fail(w, http.StatusUnprocessableEntity, err)
		}
		return
	}

	writeJSON(w, http.StatusOK, solveResponse{
		Cost:         sol.Cost,
		Classifiers:  textio.SolutionNames(inst, sol),
		Queries:      inst.NumQueries(),
		Seconds:      elapsed.Seconds(),
		Algorithm:    algoName,
		CacheHitRate: s.cache.Stats().HitRate(),
	})
}

// statsResponse is the /stats document.
type statsResponse struct {
	UptimeSeconds float64         `json:"uptime_seconds"`
	Requests      int64           `json:"requests"`
	Errors        int64           `json:"errors"`
	Cache         cache.Stats     `json:"cache"`
	CacheHitRate  float64         `json:"cache_hit_rate"`
	Sessions      sessionsStats   `json:"sessions"`
	SolveLatency  latencyStats    `json:"solve_latency"`
	Sched         schedStats      `json:"sched"`
	Flight        obs.FlightStats `json:"flight"`
}

// latencyStats summarizes a latency histogram: estimated quantiles from the
// registry's fixed log-scale buckets.
type latencyStats struct {
	Count int64   `json:"count"`
	P50   float64 `json:"p50_seconds"`
	P95   float64 `json:"p95_seconds"`
	P99   float64 `json:"p99_seconds"`
}

// schedStats surfaces the work-stealing scheduler's mc3_sched_* counters.
type schedStats struct {
	Runs       int64 `json:"runs"`
	Components int64 `json:"components"`
	Tasks      int64 `json:"tasks"`
	Steals     int64 `json:"steals"`
	Spawns     int64 `json:"spawns"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := s.cache.Stats()
	writeJSON(w, http.StatusOK, statsResponse{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Requests:      s.requests.Load(),
		Errors:        s.errored.Load(),
		Cache:         st,
		CacheHitRate:  st.HitRate(),
		Sessions:      s.sessions.snapshot(),
		SolveLatency: latencyStats{
			Count: s.solveSecsAll.Count(),
			P50:   s.solveSecsAll.Quantile(0.50),
			P95:   s.solveSecsAll.Quantile(0.95),
			P99:   s.solveSecsAll.Quantile(0.99),
		},
		Sched: schedStats{
			Runs:       s.registry.Counter("mc3_sched_runs_total").Value(),
			Components: s.registry.Counter("mc3_sched_components_total").Value(),
			Tasks:      s.registry.Counter("mc3_sched_tasks_total").Value(),
			Steals:     s.registry.Counter("mc3_sched_steals_total").Value(),
			Spawns:     s.registry.Counter("mc3_sched_spawns_total").Value(),
		},
		Flight: s.flight.Stats(),
	})
}

// fail answers an error as JSON and counts it.
func (s *Server) fail(w http.ResponseWriter, code int, err error) {
	s.errored.Add(1)
	s.registry.Counter("mc3serve_errors_total").Inc()
	writeJSON(w, code, errorResponse{Error: err.Error()})
}

// failRetry answers like fail but with a Retry-After hint: the condition is
// transient (backpressure, not a broken request), so well-behaved clients
// and load balancers should try again shortly.
func (s *Server) failRetry(w http.ResponseWriter, code int, retryAfterSecs int, err error) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSecs))
	s.fail(w, code, err)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// buildOptions translates the configuration strings into solver options
// (same vocabulary as mc3solve).
func buildOptions(cfg Config) (solver.Options, error) {
	opts := solver.DefaultOptions()
	switch cfg.WSC {
	case "auto":
		opts.WSC = solver.WSCAuto
	case "greedy":
		opts.WSC = solver.WSCGreedy
	case "primal-dual":
		opts.WSC = solver.WSCPrimalDual
	case "lp-rounding":
		opts.WSC = solver.WSCLPRounding
	case "auto-lp":
		opts.WSC = solver.WSCAutoLP
	default:
		return opts, fmt.Errorf("unknown -wsc %q", cfg.WSC)
	}
	switch cfg.Prep {
	case "full":
		opts.Prep = prep.Full
	case "minimal":
		opts.Prep = prep.Minimal
	default:
		return opts, fmt.Errorf("unknown -prep %q", cfg.Prep)
	}
	switch cfg.Engine {
	case "dinic":
		opts.Engine = bipartite.Dinic
	case "push-relabel":
		opts.Engine = bipartite.PushRelabel
	case "capacity-scaling":
		opts.Engine = bipartite.CapacityScaling
	default:
		return opts, fmt.Errorf("unknown -engine %q", cfg.Engine)
	}
	opts.Parallelism = cfg.Parallel
	if cfg.SelectorPath != "" {
		model, err := selector.Load(cfg.SelectorPath)
		if err != nil {
			return opts, err
		}
		opts.Selector = model
	}
	return opts, nil
}

// checkAlgo validates the algorithm name once at startup (resolution still
// happens per request, since "auto" depends on the instance).
func checkAlgo(name string) error {
	switch name {
	case "auto", "ktwo", "general", "short-first", "portfolio":
		return nil
	}
	return fmt.Errorf("unknown -algo %q", name)
}

// pickAlgorithm resolves the configured algorithm against an instance. The
// "auto" gate mirrors solver.Auto — static k ≤ 2 dispatch, overridable
// toward the general solver by a confident dispatch prediction from a
// loaded selector model — but is unrolled here so the chosen label reaches
// the per-request metrics.
func pickAlgorithm(name string, inst *core.Instance, opts solver.Options) (solver.Func, string) {
	switch name {
	case "ktwo":
		return solver.KTwo, "ktwo"
	case "general":
		return solver.General, "general"
	case "short-first":
		return solver.ShortFirst, "short-first"
	case "portfolio":
		return solver.Portfolio, "portfolio"
	default: // "auto", validated at startup
		if inst.MaxQueryLen() > 2 {
			return solver.General, "general"
		}
		if ds, ok := opts.Selector.(solver.DispatchSelector); ok {
			f := solver.DispatchFeatures{
				Queries:     inst.NumQueries(),
				Classifiers: inst.NumClassifiers(),
				MaxQueryLen: inst.MaxQueryLen(),
				SumQueryLen: inst.SumQueryLen(),
			}
			if algo, _, ok := ds.PredictDispatch(f); ok && algo == solver.AlgoGeneral {
				return solver.General, "general"
			}
		}
		return solver.KTwo, "ktwo"
	}
}
