package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// stressReq is a goroutine-safe request helper: unlike doJSON it never calls
// t.Fatal (illegal off the test goroutine) and reports every problem as an
// error value instead.
func stressReq(s *Server, method, path, body string, out any) (int, error) {
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if out != nil && rec.Code == http.StatusOK && rec.Body.Len() > 0 {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			return rec.Code, fmt.Errorf("%s %s: bad JSON: %v\n%s", method, path, err, rec.Body)
		}
	}
	if rec.Code != http.StatusOK && rec.Code != http.StatusNoContent {
		return rec.Code, fmt.Errorf("%s %s: status %d: %s", method, path, rec.Code, rec.Body)
	}
	return rec.Code, nil
}

// TestServerParallelStress hammers one daemon — parallel component dispatch,
// the shared process-wide solution cache, and concurrent incremental sessions
// applying deltas — from many goroutines at once; run with -race. Each
// session owns a disjoint property namespace so every interleaving is valid,
// while the stateless /solve writers all submit the same multi-component
// instance so the shared cache sees concurrent stores and hits for one key
// population.
func TestServerParallelStress(t *testing.T) {
	s := testServer(t, func(c *Config) { c.Parallel = -1; c.MaxSessions = 16 })

	// A multi-component instance: disjoint pairs, so the scheduler has
	// several components to dispatch per request.
	multiComp := func(ns string) string {
		return fmt.Sprintf(`{
			"queries": [["%[1]s_a","%[1]s_b"], ["%[1]s_c","%[1]s_d"], ["%[1]s_e","%[1]s_f"], ["%[1]s_g","%[1]s_h"]],
			"uniform_cost": 2
		}`, ns)
	}

	const sessions, solvers, rounds = 4, 3, 12
	var wg sync.WaitGroup
	errs := make(chan error, sessions+solvers)

	for g := 0; g < sessions; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ns := fmt.Sprintf("s%d", g)
			var load sessionResponse
			if _, err := stressReq(s, http.MethodPost, "/load", multiComp(ns), &load); err != nil {
				errs <- fmt.Errorf("session %d: %w", g, err)
				return
			}
			for r := 0; r < rounds; r++ {
				// Dirty several disjoint components in one batch so the
				// engine's parallel re-solve dispatch engages, then undo.
				batch := fmt.Sprintf(`{"deltas":[
					{"op":"add","props":["%[1]s_a","%[1]s_x%[2]d"]},
					{"op":"add","props":["%[1]s_c","%[1]s_y%[2]d"]},
					{"op":"cost","props":["%[1]s_e"],"cost":%[3]d}
				]}`, ns, r, r%5+1)
				if _, err := stressReq(s, http.MethodPost, "/session/"+load.Session+"/delta", batch, nil); err != nil {
					errs <- fmt.Errorf("session %d round %d: %w", g, r, err)
					return
				}
				undo := fmt.Sprintf(`{"deltas":[
					{"op":"rm","props":["%[1]s_a","%[1]s_x%[2]d"]},
					{"op":"rm","props":["%[1]s_c","%[1]s_y%[2]d"]}
				]}`, ns, r)
				if _, err := stressReq(s, http.MethodPost, "/session/"+load.Session+"/delta", undo, nil); err != nil {
					errs <- fmt.Errorf("session %d round %d undo: %w", g, r, err)
					return
				}
				if _, err := stressReq(s, http.MethodGet, "/session/"+load.Session+"/solution", "", nil); err != nil {
					errs <- fmt.Errorf("session %d round %d solution: %w", g, r, err)
					return
				}
			}
		}(g)
	}

	for g := 0; g < solvers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var wantCost float64
			for r := 0; r < rounds; r++ {
				// All solver goroutines submit the same shared-namespace
				// instance: its component solutions live in the shared
				// process cache and are stored/hit concurrently.
				var resp solveResponse
				if _, err := stressReq(s, http.MethodPost, "/solve", multiComp("shared"), &resp); err != nil {
					errs <- fmt.Errorf("solver %d round %d: %w", g, r, err)
					return
				}
				if r == 0 {
					wantCost = resp.Cost
				} else if resp.Cost != wantCost {
					errs <- fmt.Errorf("solver %d round %d: cost %v, want %v", g, r, resp.Cost, wantCost)
					return
				}
			}
		}(g)
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
