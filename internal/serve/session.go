package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/incr"
)

// The stateful session API, backed by internal/incr: a session owns a live
// load and re-solves only the components each delta batch touches.
//
//	POST   /load                   — body: instance JSON; creates a session
//	                                 (optional ?algo=auto|general|ktwo).
//	POST   /session/{id}/delta     — body: {"deltas":[{"op","props","cost"}]};
//	                                 applies the batch, answers the updated
//	                                 cost and the changed classifiers.
//	GET    /session/{id}/solution  — current full solution.
//	DELETE /session/{id}            — drops the session.
//
// Sessions share the process-wide component cache with /solve, so work done
// for one session (or one stateless solve) amortizes across all of them.

// session is one live incremental load.
type session struct {
	id      string
	algo    string
	engine  *incr.Engine
	created time.Time
}

// sessions is the server's session table.
type sessions struct {
	mu  sync.Mutex
	m   map[string]*session
	seq int64
	max int
}

func (ss *sessions) get(id string) *session {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.m[id]
}

func (ss *sessions) drop(id string) bool {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if _, ok := ss.m[id]; !ok {
		return false
	}
	delete(ss.m, id)
	return true
}

// add registers a session, enforcing the -max-sessions bound.
func (ss *sessions) add(algo string, e *incr.Engine) (*session, error) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if len(ss.m) >= ss.max {
		return nil, fmt.Errorf("session limit reached (%d); delete one or raise -max-sessions", ss.max)
	}
	ss.seq++
	s := &session{id: fmt.Sprintf("s%d", ss.seq), algo: algo, engine: e, created: time.Now()}
	ss.m[s.id] = s
	return s, nil
}

// snapshot aggregates session counters for /stats.
func (ss *sessions) snapshot() sessionsStats {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	out := sessionsStats{Count: len(ss.m)}
	for _, s := range ss.m {
		st := s.engine.Stats()
		out.Applies += st.Applies
		out.Deltas += st.Deltas
		out.Queries += st.Queries
		out.Components += st.Components
	}
	return out
}

// sessionsStats is the "sessions" block of /stats.
type sessionsStats struct {
	Count      int   `json:"count"`
	Applies    int64 `json:"applies"`
	Deltas     int64 `json:"deltas"`
	Queries    int   `json:"queries"`
	Components int   `json:"components"`
}

// sessionResponse answers /load and /delta: the apply summary plus the
// session handle.
type sessionResponse struct {
	Session   string `json:"session"`
	Algorithm string `json:"algorithm"`
	incr.Result
}

// wireDelta is the JSON form of one delta.
type wireDelta struct {
	Op    string   `json:"op"`
	Props []string `json:"props"`
	Cost  float64  `json:"cost,omitempty"`
}

// deltaRequest is the /delta body.
type deltaRequest struct {
	Deltas []wireDelta `json:"deltas"`
}

func (d wireDelta) decode() (incr.Delta, error) {
	op, err := incr.ParseOp(d.Op)
	if err != nil {
		return incr.Delta{}, err
	}
	return incr.Delta{Op: op, Props: d.Props, Cost: d.Cost}, nil
}

// sessionAlgo resolves the effective algorithm for a new session: the
// ?algo= override, else the server's -algo when the incremental engine
// supports it, else auto.
func (s *Server) sessionAlgo(r *http.Request) (string, error) {
	if a := r.URL.Query().Get("algo"); a != "" {
		switch a {
		case incr.AlgoAuto, incr.AlgoGeneral, incr.AlgoKTwo:
			return a, nil
		}
		return "", fmt.Errorf("unsupported session algo %q (want %s, %s, or %s)",
			a, incr.AlgoAuto, incr.AlgoGeneral, incr.AlgoKTwo)
	}
	switch s.cfg.Algo {
	case incr.AlgoGeneral, incr.AlgoKTwo:
		return s.cfg.Algo, nil
	}
	return incr.AlgoAuto, nil
}

// handleLoad answers POST /load: parse an instance, install it as a fresh
// incremental session, and solve it.
func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	s.registry.Counter("mc3serve_requests_total").Inc()

	algo, err := s.sessionAlgo(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	file, err := s.readInstance(w, r)
	if err != nil {
		s.failParse(w, err)
		return
	}
	if s.cfg.MaxLoadQueries > 0 && len(file.Queries) > s.cfg.MaxLoadQueries {
		s.fail(w, http.StatusRequestEntityTooLarge, fmt.Errorf(
			"load of %d queries exceeds the %d-query session limit; solve oversized loads offline with `mc3solve -stream` (see docs/STREAMING.md)",
			len(file.Queries), s.cfg.MaxLoadQueries))
		return
	}

	u := core.NewUniverse()
	opts := s.opts
	opts.Validate = s.cfg.Validate
	engine, err := incr.New(incr.Config{
		Costs:    file.CostModelFor(u),
		Universe: u,
		Algo:     algo,
		Options:  opts,
		Cache:    s.cache,
		NoCache:  s.cache == nil,
		Tracer:   s.opts.Tracer,
		Metrics:  s.registry,
	})
	if err != nil {
		s.fail(w, http.StatusUnprocessableEntity, err)
		return
	}
	deltas := make([]incr.Delta, len(file.Queries))
	for i, q := range file.Queries {
		deltas[i] = incr.Add(q...)
	}
	sess, err := s.sessions.add(algo, engine)
	if err != nil {
		// Backpressure, not a broken request: like the drain-path 503, the
		// 429 carries Retry-After so clients and routers know to back off
		// and try again instead of failing the load outright.
		s.failRetry(w, http.StatusTooManyRequests, 1, err)
		return
	}
	res, err := s.applySession(r, "load", sess, deltas)
	if err != nil {
		s.sessions.drop(sess.id) // a load that cannot solve is not a session
		s.failApply(w, err)
		return
	}
	writeJSON(w, http.StatusOK, sessionResponse{Session: sess.id, Algorithm: algo, Result: *res})
}

// handleDelta answers POST /session/{id}/delta.
func (s *Server) handleDelta(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	s.registry.Counter("mc3serve_requests_total").Inc()

	sess := s.sessions.get(r.PathValue("id"))
	if sess == nil {
		s.fail(w, http.StatusNotFound, fmt.Errorf("unknown session %q", r.PathValue("id")))
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBody))
	dec.DisallowUnknownFields()
	var req deltaRequest
	if err := dec.Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("parse deltas: %w", err))
		return
	}
	deltas := make([]incr.Delta, len(req.Deltas))
	for i, wd := range req.Deltas {
		d, err := wd.decode()
		if err != nil {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("delta %d: %w", i, err))
			return
		}
		deltas[i] = d
	}
	res, err := s.applySession(r, "delta", sess, deltas)
	if err != nil {
		s.failApply(w, err)
		return
	}
	writeJSON(w, http.StatusOK, sessionResponse{Session: sess.id, Algorithm: sess.algo, Result: *res})
}

// handleSolution answers GET /session/{id}/solution.
func (s *Server) handleSolution(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	sess := s.sessions.get(r.PathValue("id"))
	if sess == nil {
		s.fail(w, http.StatusNotFound, fmt.Errorf("unknown session %q", r.PathValue("id")))
		return
	}
	sol, err := sess.engine.Solution()
	if err != nil {
		s.fail(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Session string `json:"session"`
		*incr.Solution
	}{sess.id, sol})
}

// handleSessionDelete answers DELETE /session/{id}.
func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if !s.sessions.drop(r.PathValue("id")) {
		s.fail(w, http.StatusNotFound, fmt.Errorf("unknown session %q", r.PathValue("id")))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// applySession runs one delta batch under the request's deadline, observing
// the solve latency under the given endpoint label ("load" or "delta").
func (s *Server) applySession(r *http.Request, endpoint string, sess *session, deltas []incr.Delta) (*incr.Result, error) {
	ctx := r.Context()
	if s.cfg.ReqTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.ReqTimeout)
		defer cancel()
	}
	res, err := sess.engine.Apply(ctx, deltas)
	if err == nil {
		s.observeSolve(endpoint, res.Seconds)
	}
	return res, err
}

// failApply maps an Apply error to the same status vocabulary as /solve:
// deadline 504, client gone 499, validation/infeasibility 422.
func (s *Server) failApply(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.fail(w, http.StatusGatewayTimeout, fmt.Errorf("apply exceeded %v", s.cfg.ReqTimeout))
	case errors.Is(err, context.Canceled):
		s.fail(w, statusClientClosedRequest, errors.New("client closed request"))
	default:
		s.fail(w, http.StatusUnprocessableEntity, err)
	}
}
