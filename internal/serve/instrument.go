package serve

import (
	"fmt"
	"net/http"
	"time"

	"repro/internal/obs"
)

// Request-scoped observability: every solving endpoint runs under
// instrument(), which
//
//   - assigns the request an ID (the client's X-Request-ID when given, a
//     generated one otherwise) and echoes it on the response;
//   - opens an "http.request" root span carrying endpoint, method, and
//     request ID, and threads it through the request context so the solver
//     and incremental-engine spans nest under it — the flight recorder
//     retains the whole tree, /debug/trace/{id} serves it back;
//   - records RED metrics per endpoint × status class
//     (mc3serve_http_requests_total, mc3serve_http_errors_total,
//     mc3serve_http_request_seconds).
//
// /healthz, /stats, /metrics, and the /debug endpoints stay uninstrumented:
// they solve nothing, and probes/scrapes would drown the request ring.

// instrument wraps a handler with request-ID propagation, the root span, and
// the endpoint's RED metrics (pre-registered here, once, so the per-request
// path does no registry lookups).
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	em := s.newEndpointMetrics(endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		reqID := r.Header.Get("X-Request-ID")
		if reqID == "" {
			reqID = s.newRequestID()
		}
		w.Header().Set("X-Request-ID", reqID)
		sp := s.tracer.StartSpan("http.request",
			obs.Str("endpoint", endpoint), obs.Str("method", r.Method), obs.Str("request_id", reqID))
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		h(sw, r.WithContext(obs.ContextWithSpan(r.Context(), sp)))
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		em.observe(status, time.Since(start).Seconds())
		sp.SetAttr(obs.Int("status", status))
		if status >= 400 {
			// An error root makes the flight recorder's tail capture fire
			// regardless of latency.
			sp.EndErr(fmt.Errorf("HTTP %d", status))
		} else {
			sp.End()
		}
	}
}

// newRequestID issues a process-unique request ID: a per-boot prefix plus a
// sequence number.
func (s *Server) newRequestID() string {
	return fmt.Sprintf("%s-%06d", s.bootID, s.reqSeq.Add(1))
}

// statusWriter captures the response status for metrics and the root span.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

// endpointMetrics holds one endpoint's pre-registered RED series.
type endpointMetrics struct {
	classes [5]*obs.Counter // status classes 1xx … 5xx
	errors  *obs.Counter
	seconds *obs.Histogram
}

func (s *Server) newEndpointMetrics(endpoint string) *endpointMetrics {
	em := &endpointMetrics{
		errors:  s.registry.Counter(fmt.Sprintf(`mc3serve_http_errors_total{endpoint=%q}`, endpoint)),
		seconds: s.registry.Histogram(fmt.Sprintf(`mc3serve_http_request_seconds{endpoint=%q}`, endpoint)),
	}
	for i := range em.classes {
		em.classes[i] = s.registry.Counter(
			fmt.Sprintf(`mc3serve_http_requests_total{endpoint=%q,status="%dxx"}`, endpoint, i+1))
	}
	return em
}

// observe records one finished request.
func (em *endpointMetrics) observe(status int, secs float64) {
	class := status/100 - 1
	if class < 0 {
		class = 0
	} else if class > 4 {
		class = 4
	}
	em.classes[class].Inc()
	em.seconds.Observe(secs)
	if status >= 400 {
		em.errors.Inc()
	}
}

// observeSolve records one solve/apply duration into the aggregate
// mc3serve_solve_seconds family and its per-endpoint split series.
func (s *Server) observeSolve(endpoint string, secs float64) {
	s.solveSecsAll.Observe(secs)
	s.solveSecs[endpoint].Observe(secs)
}

// handleDebugRequests answers GET /debug/requests: the flight recorder's
// counters plus a newest-first summary of the retained request traces. These
// answer directly (not via s.fail) so inspecting the server never inflates
// its error metrics.
func (s *Server) handleDebugRequests(w http.ResponseWriter, _ *http.Request) {
	if s.flight == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "flight recorder disabled (-flight 0)"})
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Stats    obs.FlightStats    `json:"stats"`
		Requests []obs.TraceSummary `json:"requests"`
	}{s.flight.Stats(), s.flight.Snapshot()})
}

// handleDebugTrace answers GET /debug/trace/{id}: the full span tree of one
// retained request, looked up by request ID or root span ID.
func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	if s.flight == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "flight recorder disabled (-flight 0)"})
		return
	}
	id := r.PathValue("id")
	t, ok := s.flight.Trace(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("no retained trace %q (evicted or never recorded)", id)})
		return
	}
	writeJSON(w, http.StatusOK, t.JSON())
}
