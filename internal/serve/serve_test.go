package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// testServer builds a handler with the default configuration, tweaked by fn.
func testServer(t *testing.T, fn func(*Config)) *Server {
	t.Helper()
	cfg := DefaultConfig()
	cfg.CacheSize = 128
	cfg.ReqTimeout = 5 * time.Second
	cfg.MaxBody = 1 << 20
	cfg.MaxSessions = 8
	if fn != nil {
		fn(&cfg)
	}
	s, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// paperInstance is the paper's running example in the wire format.
const paperInstance = `{
	"queries": [
		["team:juventus", "color:white", "brand:adidas"],
		["team:chelsea", "brand:adidas"],
		["color:white", "brand:adidas"]
	],
	"default_cost": 10,
	"costs": {
		"brand:adidas": 4,
		"color:white": 5,
		"team:chelsea": 7,
		"team:juventus": 6,
		"brand:adidas|color:white": 8,
		"brand:adidas|team:chelsea": 9
	}
}`

func postSolve(t *testing.T, s *Server, body string) (*httptest.ResponseRecorder, solveResponse) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/solve", strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var resp solveResponse
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("bad JSON response: %v\n%s", err, rec.Body)
		}
	}
	return rec, resp
}

func TestSolveEndpoint(t *testing.T) {
	s := testServer(t, nil)
	rec, resp := postSolve(t, s, paperInstance)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if resp.Cost <= 0 || len(resp.Classifiers) == 0 {
		t.Fatalf("implausible solution: %+v", resp)
	}
	if resp.Queries != 3 {
		t.Errorf("queries = %d, want 3", resp.Queries)
	}
	if resp.Algorithm != "general" {
		t.Errorf("algorithm = %q, want general (max query length 3)", resp.Algorithm)
	}
}

func TestSolveCacheAmortization(t *testing.T) {
	s := testServer(t, nil)
	rec1, resp1 := postSolve(t, s, paperInstance)
	if rec1.Code != http.StatusOK {
		t.Fatalf("first solve: status %d: %s", rec1.Code, rec1.Body)
	}
	rec2, resp2 := postSolve(t, s, paperInstance)
	if rec2.Code != http.StatusOK {
		t.Fatalf("second solve: status %d: %s", rec2.Code, rec2.Body)
	}
	if resp1.Cost != resp2.Cost {
		t.Fatalf("repeat solve changed cost: %v vs %v", resp1.Cost, resp2.Cost)
	}
	if !(resp2.CacheHitRate > 0) {
		t.Errorf("second identical solve reported hit rate %v, want > 0", resp2.CacheHitRate)
	}

	// The /stats endpoint must agree.
	req := httptest.NewRequest(http.MethodGet, "/stats", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var st statsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("stats JSON: %v", err)
	}
	if st.Requests != 2 || st.Errors != 0 {
		t.Errorf("stats = %+v, want 2 requests, 0 errors", st)
	}
	if st.Cache.Hits == 0 {
		t.Errorf("stats cache hits = 0, want > 0 (%+v)", st.Cache)
	}
}

func TestSolveCacheDisabled(t *testing.T) {
	s := testServer(t, func(c *Config) { c.CacheSize = 0 })
	for i := 0; i < 2; i++ {
		rec, resp := postSolve(t, s, paperInstance)
		if rec.Code != http.StatusOK {
			t.Fatalf("solve %d: status %d: %s", i, rec.Code, rec.Body)
		}
		if resp.CacheHitRate != 0 {
			t.Errorf("cache disabled but hit rate = %v", resp.CacheHitRate)
		}
	}
}

func TestSolveErrors(t *testing.T) {
	s := testServer(t, nil)
	cases := []struct {
		name string
		body string
		code int
	}{
		{"malformed JSON", `{"queries": [`, http.StatusBadRequest},
		{"empty load", `{"queries": []}`, http.StatusBadRequest},
		// All classifiers priced +Inf by omission: infeasible.
		{"infeasible", `{"queries": [["a", "b"]], "costs": {}}`, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec, _ := postSolve(t, s, tc.body)
			if rec.Code != tc.code {
				t.Fatalf("status %d, want %d: %s", rec.Code, tc.code, rec.Body)
			}
			var er errorResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Error == "" {
				t.Errorf("error body not JSON {error}: %s", rec.Body)
			}
		})
	}
}

func TestSolveBodyLimit(t *testing.T) {
	s := testServer(t, func(c *Config) { c.MaxBody = 64 })
	var big bytes.Buffer
	big.WriteString(`{"queries": [`)
	for i := 0; i < 100; i++ {
		if i > 0 {
			big.WriteString(",")
		}
		big.WriteString(`["p1", "p2"]`)
	}
	big.WriteString(`], "uniform_cost": 1}`)
	rec, _ := postSolve(t, s, big.String())
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", rec.Code)
	}
}

func TestHealthAndMetrics(t *testing.T) {
	s := testServer(t, nil)
	postSolve(t, s, paperInstance)

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("healthz: %d %s", rec.Code, rec.Body)
	}

	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics: %d", rec.Code)
	}
	for _, name := range []string{"mc3serve_requests_total", "mc3serve_solve_seconds", "mc3_cache_misses_total"} {
		if !strings.Contains(rec.Body.String(), name) {
			t.Errorf("metrics exposition lacks %s", name)
		}
	}
}

func TestRequestTimeout(t *testing.T) {
	// A denser random load with an unreachable deadline: the solve must be
	// cut off and answered as 504. Timeout 1ns cannot complete even the
	// preprocessing checkpoint.
	s := testServer(t, func(c *Config) { c.ReqTimeout = time.Nanosecond })
	rec, _ := postSolve(t, s, paperInstance)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", rec.Code, rec.Body)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Algo = "nope" },
		func(c *Config) { c.WSC = "nope" },
		func(c *Config) { c.Prep = "nope" },
		func(c *Config) { c.Engine = "nope" },
	}
	for i, fn := range bad {
		cfg := Config{Algo: "auto", WSC: "auto", Prep: "full", Engine: "dinic"}
		fn(&cfg)
		if _, err := New(cfg, nil); err == nil {
			t.Errorf("case %d: bad config accepted", i)
		}
	}
}
