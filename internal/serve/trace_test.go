package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// Tests for the request-scoped observability layer: request-ID propagation,
// the flight recorder's debug endpoints, tail-based slow/error capture, RED
// metrics, and the serve-path feature harvester.

// get answers a GET against the handler.
func get(t *testing.T, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

func TestRequestIDPropagation(t *testing.T) {
	s := testServer(t, nil)

	// A client-supplied X-Request-ID is echoed verbatim.
	req := httptest.NewRequest(http.MethodPost, "/solve", strings.NewReader(paperInstance))
	req.Header.Set("X-Request-ID", "client-chose-this")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("solve: %d: %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("X-Request-ID"); got != "client-chose-this" {
		t.Errorf("X-Request-ID = %q, want the client's ID echoed", got)
	}

	// Without one, the server generates distinct non-empty IDs.
	var ids []string
	for i := 0; i < 2; i++ {
		rec, _ := postSolve(t, s, paperInstance)
		id := rec.Header().Get("X-Request-ID")
		if id == "" {
			t.Fatalf("request %d: no generated X-Request-ID", i)
		}
		ids = append(ids, id)
	}
	if ids[0] == ids[1] {
		t.Errorf("generated IDs collide: %q", ids[0])
	}

	// Errors carry an ID too: the flight recorder must be able to key the
	// failed request's trace.
	rec, _ = postSolve(t, s, `{"queries": [`)
	if rec.Code != http.StatusBadRequest || rec.Header().Get("X-Request-ID") == "" {
		t.Errorf("error response lacks X-Request-ID (status %d)", rec.Code)
	}
}

// debugRequestsDoc mirrors the /debug/requests response.
type debugRequestsDoc struct {
	Stats    obs.FlightStats `json:"stats"`
	Requests []struct {
		Root      uint64 `json:"root"`
		Name      string `json:"name"`
		RequestID string `json:"request_id"`
		Spans     int    `json:"spans"`
	} `json:"requests"`
}

// debugTraceDoc mirrors the /debug/trace/{id} response.
type debugTraceDoc struct {
	Root      uint64 `json:"root"`
	RequestID string `json:"request_id"`
	Name      string `json:"name"`
	Nanos     int64  `json:"ns"`
	Err       string `json:"err"`
	Spans     []struct {
		Name   string         `json:"name"`
		ID     uint64         `json:"id"`
		Parent uint64         `json:"parent"`
		Attrs  map[string]any `json:"attrs"`
	} `json:"spans"`
}

func TestDebugEndpoints(t *testing.T) {
	s := testServer(t, nil)

	req := httptest.NewRequest(http.MethodPost, "/solve", strings.NewReader(paperInstance))
	req.Header.Set("X-Request-ID", "trace-me")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("solve: %d: %s", rec.Code, rec.Body)
	}

	// /debug/requests lists the retained request.
	rec = get(t, s, "/debug/requests")
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/requests: %d: %s", rec.Code, rec.Body)
	}
	var doc debugRequestsDoc
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("/debug/requests JSON: %v\n%s", err, rec.Body)
	}
	if doc.Stats.Recorded == 0 || len(doc.Requests) == 0 {
		t.Fatalf("flight recorder retained nothing: %+v", doc.Stats)
	}
	found := false
	for _, r := range doc.Requests {
		if r.RequestID == "trace-me" {
			found = true
			if r.Name != "http.request" {
				t.Errorf("summary root span = %q, want http.request", r.Name)
			}
			if r.Spans < 3 {
				t.Errorf("summary spans = %d, want the request+solve+component tree", r.Spans)
			}
		}
	}
	if !found {
		t.Fatalf("request trace-me missing from /debug/requests: %s", rec.Body)
	}

	// /debug/trace/{request-id} serves the complete span tree.
	rec = get(t, s, "/debug/trace/trace-me")
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/trace/trace-me: %d: %s", rec.Code, rec.Body)
	}
	var tr debugTraceDoc
	if err := json.Unmarshal(rec.Body.Bytes(), &tr); err != nil {
		t.Fatalf("trace JSON: %v\n%s", err, rec.Body)
	}
	if tr.RequestID != "trace-me" || tr.Name != "http.request" {
		t.Errorf("trace root = %q/%q, want http.request/trace-me", tr.Name, tr.RequestID)
	}
	names := map[string]int{}
	byID := map[uint64]string{}
	for _, sp := range tr.Spans {
		names[sp.Name]++
		byID[sp.ID] = sp.Name
	}
	for _, want := range []string{"http.request", "solve", "component"} {
		if names[want] == 0 {
			t.Errorf("trace lacks a %q span: have %v", want, names)
		}
	}
	// Every non-root span's parent is present: the tree is complete.
	for _, sp := range tr.Spans {
		if sp.ID == tr.Root {
			continue
		}
		if _, ok := byID[sp.Parent]; !ok {
			t.Errorf("span %q (id %d) has dangling parent %d", sp.Name, sp.ID, sp.Parent)
		}
	}

	// Unknown IDs are a JSON 404, not a 500.
	rec = get(t, s, "/debug/trace/never-recorded")
	if rec.Code != http.StatusNotFound {
		t.Errorf("/debug/trace unknown: %d, want 404", rec.Code)
	}
	var er errorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Error == "" {
		t.Errorf("404 body not JSON {error}: %s", rec.Body)
	}

	// Inspecting the server must not count as request errors.
	var st statsResponse
	doJSON(t, s, http.MethodGet, "/stats", "", &st)
	if st.Errors != 0 {
		t.Errorf("debug endpoints inflated error count: %+v", st)
	}
}

func TestDebugEndpointsDisabled(t *testing.T) {
	s := testServer(t, func(c *Config) { c.Flight = 0 })
	postSolve(t, s, paperInstance)
	for _, path := range []string{"/debug/requests", "/debug/trace/anything"} {
		rec := get(t, s, path)
		if rec.Code != http.StatusNotFound {
			t.Errorf("%s with -flight 0: %d, want 404", path, rec.Code)
		}
	}
}

// slowRec mirrors one slow-query JSONL record.
type slowRec struct {
	Kind      string `json:"kind"`
	RequestID string `json:"request_id"`
	Root      uint64 `json:"root"`
	Name      string `json:"name"`
	Nanos     int64  `json:"ns"`
	Err       string `json:"err"`
	Spans     []struct {
		Name string `json:"name"`
	} `json:"spans"`
}

func readSlowLog(t *testing.T, buf *bytes.Buffer) []slowRec {
	t.Helper()
	var out []slowRec
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	for sc.Scan() {
		var r slowRec
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("slow-log line not JSON: %v\n%s", err, sc.Text())
		}
		out = append(out, r)
	}
	return out
}

func TestSlowQueryCapture(t *testing.T) {
	// Threshold 1ns: every completed request counts as slow.
	var buf bytes.Buffer
	s := testServer(t, func(c *Config) {
		c.SlowW = &buf
		c.SlowThreshold = time.Nanosecond
	})
	req := httptest.NewRequest(http.MethodPost, "/solve", strings.NewReader(paperInstance))
	req.Header.Set("X-Request-ID", "slowpoke")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("solve: %d: %s", rec.Code, rec.Body)
	}

	recs := readSlowLog(t, &buf)
	if len(recs) != 1 {
		t.Fatalf("slow log has %d records, want 1:\n%s", len(recs), buf.String())
	}
	r := recs[0]
	if r.Kind != "slow" || r.RequestID != "slowpoke" || r.Name != "http.request" {
		t.Errorf("slow record = %+v, want kind=slow request_id=slowpoke", r)
	}
	spanNames := map[string]bool{}
	for _, sp := range r.Spans {
		spanNames[sp.Name] = true
	}
	for _, want := range []string{"http.request", "solve", "component"} {
		if !spanNames[want] {
			t.Errorf("slow record lacks a %q span", want)
		}
	}
}

func TestErrorCapture(t *testing.T) {
	// Threshold far away: only the error path may trigger capture.
	var buf bytes.Buffer
	s := testServer(t, func(c *Config) {
		c.SlowW = &buf
		c.SlowThreshold = time.Hour
	})

	// A fast success is not captured.
	if rec, _ := postSolve(t, s, paperInstance); rec.Code != http.StatusOK {
		t.Fatalf("solve: %d", rec.Code)
	}
	if buf.Len() != 0 {
		t.Fatalf("fast success captured: %s", buf.String())
	}

	// An infeasible instance answers 422; the root span ends in error and the
	// whole tree lands in the slow log.
	req := httptest.NewRequest(http.MethodPost, "/solve",
		strings.NewReader(`{"queries": [["a", "b"]], "costs": {}}`))
	req.Header.Set("X-Request-ID", "doomed")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("infeasible solve: %d, want 422: %s", rec.Code, rec.Body)
	}

	recs := readSlowLog(t, &buf)
	if len(recs) != 1 {
		t.Fatalf("slow log has %d records, want 1:\n%s", len(recs), buf.String())
	}
	r := recs[0]
	if r.Kind != "error" || r.RequestID != "doomed" {
		t.Errorf("error record = %+v, want kind=error request_id=doomed", r)
	}
	if !strings.Contains(r.Err, "422") {
		t.Errorf("error record err = %q, want the HTTP status", r.Err)
	}

	// The failed request's full trace is also retrievable by ID.
	trRec := get(t, s, "/debug/trace/doomed")
	if trRec.Code != http.StatusOK {
		t.Fatalf("/debug/trace/doomed: %d", trRec.Code)
	}
	var tr debugTraceDoc
	if err := json.Unmarshal(trRec.Body.Bytes(), &tr); err != nil {
		t.Fatalf("trace JSON: %v", err)
	}
	if tr.Err == "" {
		t.Errorf("retained error trace has no err: %s", trRec.Body)
	}
}

func TestServeFeatureLog(t *testing.T) {
	var buf bytes.Buffer
	s := testServer(t, func(c *Config) { c.FeatureW = &buf })

	req := httptest.NewRequest(http.MethodPost, "/solve", strings.NewReader(paperInstance))
	req.Header.Set("X-Request-ID", "harvested")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("solve: %d: %s", rec.Code, rec.Body)
	}

	type featRec struct {
		Kind      string         `json:"kind"`
		Source    string         `json:"source"`
		RequestID string         `json:"request_id"`
		Algo      string         `json:"algo"`
		Queries   int64          `json:"queries"`
		Params    map[string]any `json:"params"`
	}
	var comps int
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	for sc.Scan() {
		var r featRec
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("feature line not JSON: %v\n%s", err, sc.Text())
		}
		if r.Kind != "component" {
			continue
		}
		comps++
		if r.Source != "mc3serve" || r.RequestID != "harvested" {
			t.Errorf("feature record source/request = %q/%q, want mc3serve/harvested", r.Source, r.RequestID)
		}
		if r.Queries <= 0 || len(r.Params) == 0 {
			t.Errorf("feature record lacks instance features: %+v", r)
		}
	}
	if comps == 0 {
		t.Fatalf("no component feature records harvested:\n%s", buf.String())
	}
}

func TestMetricsREDAndLint(t *testing.T) {
	s := testServer(t, nil)

	// Exercise every instrumented endpoint, successes and failures alike.
	if rec, _ := postSolve(t, s, paperInstance); rec.Code != http.StatusOK {
		t.Fatalf("solve: %d", rec.Code)
	}
	if rec, _ := postSolve(t, s, `{"queries": [["a", "b"]], "costs": {}}`); rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("infeasible: %d", rec.Code)
	}
	load := createSession(t, s, paperInstance)
	doJSON(t, s, http.MethodPost, "/session/"+load.Session+"/delta",
		`{"deltas":[{"op":"add","props":["team:chelsea"]}]}`, nil)
	doJSON(t, s, http.MethodGet, "/session/"+load.Session+"/solution", "", nil)
	doJSON(t, s, http.MethodDelete, "/session/"+load.Session, "", nil)
	doJSON(t, s, http.MethodGet, "/session/nope/solution", "", nil) // a 404

	rec := get(t, s, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics: %d", rec.Code)
	}
	body := rec.Body.String()
	for _, series := range []string{
		`mc3serve_http_requests_total{endpoint="solve",status="2xx"}`,
		`mc3serve_http_requests_total{endpoint="solve",status="4xx"}`,
		`mc3serve_http_requests_total{endpoint="load",status="2xx"}`,
		`mc3serve_http_requests_total{endpoint="delta",status="2xx"}`,
		`mc3serve_http_errors_total{endpoint="solve"}`,
		`mc3serve_http_request_seconds_bucket{endpoint="solve",le=`,
		`mc3serve_solve_seconds_bucket{endpoint="solve",le=`,
		`mc3serve_solve_seconds_bucket{endpoint="load",le=`,
		`mc3serve_solve_seconds_bucket{endpoint="delta",le=`,
		`mc3serve_solve_seconds_count `, // the unlabeled aggregate family survives
	} {
		if !strings.Contains(body, series) {
			t.Errorf("/metrics lacks %s", series)
		}
	}

	// The whole exposition must be well-formed Prometheus text format.
	if err := obs.LintMetrics(strings.NewReader(body)); err != nil {
		t.Errorf("/metrics exposition does not lint: %v\n%s", err, body)
	}

	// /stats surfaces latency quantiles, scheduler counters, and flight stats.
	var st statsResponse
	doJSON(t, s, http.MethodGet, "/stats", "", &st)
	if st.SolveLatency.Count < 3 { // solve + load + delta
		t.Errorf("solve latency count = %d, want >= 3", st.SolveLatency.Count)
	}
	if st.SolveLatency.P50 <= 0 || st.SolveLatency.P99 < st.SolveLatency.P50 {
		t.Errorf("implausible latency quantiles: %+v", st.SolveLatency)
	}
	if st.Flight.Recorded == 0 {
		t.Errorf("flight stats empty in /stats: %+v", st.Flight)
	}
}

// TestDebugEndpointsUnderLoad hammers the ring from writers while readers walk
// the debug endpoints — meaningful mainly under -race.
func TestDebugEndpointsUnderLoad(t *testing.T) {
	s := testServer(t, func(c *Config) { c.Flight = 8 })
	const writers, perWriter = 4, 16

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				get(t, s, "/debug/requests")
				get(t, s, fmt.Sprintf("/debug/trace/w0-%d", i%perWriter))
				get(t, s, "/metrics")
				get(t, s, "/stats")
			}
		}()
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				req := httptest.NewRequest(http.MethodPost, "/solve", strings.NewReader(paperInstance))
				req.Header.Set("X-Request-ID", fmt.Sprintf("w%d-%d", w, i))
				s.ServeHTTP(httptest.NewRecorder(), req)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		// Writers finish first; then release the readers.
		wg.Wait()
		close(done)
	}()
	// Wait for the writer goroutines by polling flight stats.
	deadline := time.After(30 * time.Second)
	for {
		if s.flight.Stats().Recorded >= writers*perWriter {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("writers did not finish: %+v", s.flight.Stats())
		case <-time.After(10 * time.Millisecond):
		}
	}
	close(stop)
	<-done

	st := s.flight.Stats()
	if st.Recorded != writers*perWriter {
		t.Errorf("recorded %d traces, want %d", st.Recorded, writers*perWriter)
	}
	if st.Retained != 8 {
		t.Errorf("retained %d, want ring capacity 8", st.Retained)
	}
}
