package serve

import (
	"net/http"
	"testing"
)

// TestReadyzFlipsAtDrainStart is the /readyz regression: readiness answers
// 200 while serving and flips to 503 (with Retry-After) the moment a drain
// starts, so routers and load balancers stop sending before the listener
// closes. Liveness (/healthz) stays a separate endpoint with its own body.
func TestReadyzFlipsAtDrainStart(t *testing.T) {
	s := testServer(t, nil)

	rec := doJSON(t, s, http.MethodGet, "/readyz", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("/readyz before drain: status %d, want 200: %s", rec.Code, rec.Body)
	}
	if got := rec.Body.String(); got != "ready\n" {
		t.Fatalf("/readyz body %q, want %q", got, "ready\n")
	}
	if rec := doJSON(t, s, http.MethodGet, "/healthz", "", nil); rec.Body.String() != "ok\n" {
		t.Fatalf("/healthz body %q, want %q", rec.Body.String(), "ok\n")
	}

	s.StartDrain()
	if !s.Draining() {
		t.Fatal("Draining() false after StartDrain")
	}
	rec = doJSON(t, s, http.MethodGet, "/readyz", "", nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz during drain: status %d, want 503: %s", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("/readyz during drain: no Retry-After header")
	}
}

// TestBackpressureCarriesRetryAfter asserts both transient-backpressure
// answers carry Retry-After: the -max-sessions 429 (which used to omit it)
// and the drain-path 503.
func TestBackpressureCarriesRetryAfter(t *testing.T) {
	s := testServer(t, func(c *Config) { c.MaxSessions = 1 })
	createSession(t, s, paperInstance)

	rec := doJSON(t, s, http.MethodPost, "/load", paperInstance, nil)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("load over the session limit: status %d, want 429: %s", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("session-limit 429: no Retry-After header")
	}

	s.StartDrain()
	rec = doJSON(t, s, http.MethodPost, "/load", paperInstance, nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("load during drain: status %d, want 503: %s", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("drain 503: no Retry-After header")
	}
}
