package core

import (
	"math"
	"testing"
)

// allocQueries builds n copies of the same three-property query plus one
// distinct anchor query, for exercising the duplicate-shape memoization.
func allocQueries(n int) []PropSet {
	qs := make([]PropSet, 0, n+1)
	qs = append(qs, NewPropSet(100, 200))
	for i := 0; i < n; i++ {
		qs = append(qs, NewPropSet(1, 2, 3))
	}
	return qs
}

// TestSteadyStateEnumerationAllocs gates the memoized C_Q re-enumeration
// path: once a query shape has been enumerated, each repeat (under
// KeepDuplicateQueries, the serving-load shape) must cost only the
// cross-index appends — a handful of allocations, not a fresh subset walk
// with per-mask key building.
func TestSteadyStateEnumerationAllocs(t *testing.T) {
	cm := UniformCost(1)
	u := NewUniverse()
	opts := Options{KeepDuplicateQueries: true}

	build := func(n int) func() {
		qs := allocQueries(n)
		return func() {
			if _, err := NewInstance(u, qs, cm, opts); err != nil {
				t.Fatal(err)
			}
		}
	}
	base := testing.AllocsPerRun(50, build(1))
	many := testing.AllocsPerRun(50, build(101))
	perDup := (many - base) / 100
	if perDup > 4 {
		t.Errorf("steady-state re-enumeration costs %.2f allocs per duplicate query (base %.0f, 101 dups %.0f), want ≤ 4",
			perDup, base, many)
	}
}

// TestCostTableLookupNoAlloc gates the CostTable hot path: pricing a
// classifier must not allocate (the lookup key is byte-encoded into a stack
// buffer).
func TestCostTableLookupNoAlloc(t *testing.T) {
	ct := NewCostTable(math.Inf(1))
	hit := NewPropSet(3, 7, 12)
	ct.Set(hit, 2)
	miss := NewPropSet(4, 8)
	var sink float64
	if avg := testing.AllocsPerRun(100, func() {
		sink += ct.Cost(hit)
		sink += 0 * ct.Cost(miss)
	}); avg != 0 {
		t.Errorf("CostTable.Cost allocates %.1f times per pair of lookups, want 0", avg)
	}
	_ = sink
}

// TestDuplicateShapeSharing verifies the memoized path is observationally
// identical to full enumeration: duplicates report the same classifier
// lists as their first occurrence, and every cross-index accounts for every
// occurrence.
func TestDuplicateShapeSharing(t *testing.T) {
	u := NewUniverse()
	ct := NewCostTable(1)
	ct.Set(NewPropSet(2), math.Inf(1)) // one unavailable subset, exercised per shape
	qs := []PropSet{
		NewPropSet(1, 2, 3),
		NewPropSet(7, 9),
		NewPropSet(1, 2, 3),
		NewPropSet(1, 2, 3),
	}
	inst, err := NewInstance(u, qs, ct, Options{KeepDuplicateQueries: true})
	if err != nil {
		t.Fatal(err)
	}
	if inst.NumQueries() != 4 {
		t.Fatalf("NumQueries = %d, want 4", inst.NumQueries())
	}
	first := inst.QueryClassifiers(0)
	if len(first) != 6 { // 2^3−1 subsets minus the +Inf singleton {2}
		t.Fatalf("query 0 has %d classifiers, want 6", len(first))
	}
	for _, qi := range []int{2, 3} {
		dup := inst.QueryClassifiers(qi)
		if len(dup) != len(first) {
			t.Fatalf("query %d has %d classifiers, first occurrence has %d", qi, len(dup), len(first))
		}
		for i := range dup {
			if dup[i] != first[i] {
				t.Fatalf("query %d classifier %d = %+v, first occurrence has %+v", qi, i, dup[i], first[i])
			}
		}
	}
	// Every classifier of the repeated shape must list all three occurrences.
	for _, qc := range first {
		qis := inst.ClassifierQueries(qc.ID)
		var hits int
		for _, qi := range qis {
			if qi == 0 || qi == 2 || qi == 3 {
				hits++
			}
		}
		if hits != 3 {
			t.Errorf("classifier %v lists %d of the 3 duplicate queries: %v", inst.Classifier(qc.ID), hits, qis)
		}
		if inst.Incidence(qc.ID) != hits {
			t.Errorf("classifier %v incidence %d ≠ duplicate hits %d", inst.Classifier(qc.ID), inst.Incidence(qc.ID), hits)
		}
	}
}
