package core

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
)

// CostModel assigns a construction cost to every candidate classifier.
// Returning math.Inf(1) means the classifier is unavailable (the paper models
// classifiers that are omitted from the input as having infinite weight).
// Costs must be non-negative.
//
// The PropSet passed to Cost may be a buffer the caller reuses after Cost
// returns (instance construction enumerates the classifier universe through
// one scratch set): implementations must not retain it — copy it with
// NewPropSet(s...) if a reference must outlive the call.
type CostModel interface {
	Cost(s PropSet) float64
}

// CostFunc adapts a plain function to the CostModel interface.
type CostFunc func(PropSet) float64

// Cost implements CostModel.
func (f CostFunc) Cost(s PropSet) float64 { return f(s) }

// UniformCost is a CostModel that prices every classifier at a fixed cost,
// matching the restricted model of the paper's predecessor [13] and the
// BestBuy dataset.
type UniformCost float64

// Cost implements CostModel.
func (c UniformCost) Cost(PropSet) float64 { return float64(c) }

// CostTable is a CostModel backed by an explicit map from PropSet keys to
// costs. Classifiers absent from the table get Default (use math.Inf(1) to
// make unlisted classifiers unavailable).
type CostTable struct {
	Costs   map[string]float64
	Default float64
}

// NewCostTable returns an empty table with the given default cost.
func NewCostTable(def float64) *CostTable {
	return &CostTable{Costs: make(map[string]float64), Default: def}
}

// Set assigns cost c to the classifier testing exactly the properties in s.
func (t *CostTable) Set(s PropSet, c float64) { t.Costs[s.Key()] = c }

// Cost implements CostModel.
func (t *CostTable) Cost(s PropSet) float64 {
	var buf [4 * MaxEnumQueryLen]byte
	// Indexing a map by string(bytes) does not allocate; sets longer than the
	// stack buffer (impossible for enumerated classifiers) fall back to an
	// appended key.
	if c, ok := t.Costs[string(s.AppendKey(buf[:0]))]; ok {
		return c
	}
	return t.Default
}

// ClassifierID indexes a classifier within an Instance.
type ClassifierID int32

// NoClassifier is the invalid ClassifierID.
const NoClassifier ClassifierID = -1

// QueryClassifier is a classifier viewed from inside a particular query: its
// instance-wide ID plus the bitmask of the query's properties it tests (bit i
// corresponds to the i-th property of the query's canonical PropSet order).
type QueryClassifier struct {
	ID   ClassifierID
	Mask uint64
}

// Options configure instance construction.
type Options struct {
	// MaxClassifierLen bounds the length of enumerated classifiers (the
	// paper's k' < k "bounded classifiers" variant, Section 5.3). Zero means
	// no bound beyond query length.
	MaxClassifierLen int
	// MaxQueryLen rejects queries longer than this during construction.
	// Zero means the built-in enumeration safety limit (MaxEnumQueryLen).
	MaxQueryLen int
	// KeepDuplicateQueries retains duplicate queries instead of merging
	// them. The paper assumes a set of distinct queries; duplicates are
	// merged by default.
	KeepDuplicateQueries bool
}

// MaxEnumQueryLen is the hard cap on query length: the classifier universe of
// a query of length L has 2^L−1 members, so enumeration beyond this is
// rejected rather than silently exploding. The paper notes queries beyond
// length 10 are rare in practice and omitted from its synthetic workload.
const MaxEnumQueryLen = 20

// Instance is a fully materialized MC³ problem: the query load Q, the
// classifier universe C_Q (every non-empty subset of a query priced below
// +Inf by the cost model), and per-query / per-classifier cross-indexes.
//
// Instances are immutable after construction; solvers layer their own mutable
// state (effective costs, selections) on top.
type Instance struct {
	Universe *Universe

	queries     []PropSet
	classifiers []PropSet
	costs       []float64
	byKey       map[string]ClassifierID

	queryCls   [][]QueryClassifier // per query: available classifiers ⊆ q
	clsQueries [][]int32           // per classifier: indices of queries containing it

	maxQueryLen      int
	maxClassifierLen int
	sumQueryLen      int
	totalFiniteCost  float64
}

// NewInstance materializes an MC³ instance from a query load and a cost
// model. Queries must be non-empty; duplicates are merged unless
// opts.KeepDuplicateQueries is set. The classifier universe C_Q is enumerated
// per Section 2.1: every non-empty subset of every query, keeping those the
// cost model prices below +Inf.
func NewInstance(u *Universe, queries []PropSet, cm CostModel, opts Options) (*Instance, error) {
	if u == nil {
		return nil, errors.New("core: nil Universe")
	}
	if cm == nil {
		return nil, errors.New("core: nil CostModel")
	}
	maxQ := opts.MaxQueryLen
	if maxQ <= 0 || maxQ > MaxEnumQueryLen {
		maxQ = MaxEnumQueryLen
	}

	inst := &Instance{
		Universe: u,
		byKey:    make(map[string]ClassifierID),
	}

	// keyBuf is the one scratch buffer every canonical key of the
	// construction is byte-encoded into; map lookups go through
	// m[string(keyBuf)], which the compiler compiles without allocating, so
	// a key string is only materialized when a new entry is stored.
	keyBuf := make([]byte, 0, 4*MaxEnumQueryLen)

	seen := make(map[string]bool, len(queries))
	for qi, q := range queries {
		if q.Empty() {
			return nil, fmt.Errorf("core: query %d is empty", qi)
		}
		if q.Len() > maxQ {
			return nil, fmt.Errorf("core: query %d has length %d, exceeding the limit %d", qi, q.Len(), maxQ)
		}
		if !opts.KeepDuplicateQueries {
			keyBuf = q.AppendKey(keyBuf[:0])
			if seen[string(keyBuf)] {
				continue
			}
			seen[string(keyBuf)] = true
		}
		inst.queries = append(inst.queries, q)
		if q.Len() > inst.maxQueryLen {
			inst.maxQueryLen = q.Len()
		}
		inst.sumQueryLen += q.Len()
	}
	if len(inst.queries) == 0 {
		return nil, errors.New("core: no queries")
	}

	kPrime := opts.MaxClassifierLen
	if kPrime <= 0 || kPrime > inst.maxQueryLen {
		kPrime = inst.maxQueryLen
	}

	// shapeOf memoizes enumeration per unique query shape: with
	// KeepDuplicateQueries set, a repeated query shares the first
	// occurrence's classifier list instead of re-walking its 2^|q|−1 subsets
	// (without the option duplicates were merged above and every shape is
	// seen once, so the map stays cold).
	var shapeOf map[string]int32
	if opts.KeepDuplicateQueries {
		shapeOf = make(map[string]int32, len(inst.queries))
	}
	// scratch is the reusable subset buffer handed to the cost model; a
	// durable PropSet is materialized only for classifiers that join the
	// universe (CostModel documents that Cost must not retain its argument).
	scratch := make(PropSet, 0, inst.maxQueryLen)

	inst.queryCls = make([][]QueryClassifier, len(inst.queries))
	for qi, q := range inst.queries {
		if shapeOf != nil {
			keyBuf = q.AppendKey(keyBuf[:0])
			if prev, ok := shapeOf[string(keyBuf)]; ok {
				// Identical query: same subsets, same verdicts, same masks.
				// queryCls rows are immutable after construction, so sharing
				// the backing array is safe.
				inst.queryCls[qi] = inst.queryCls[prev]
				for _, qc := range inst.queryCls[qi] {
					inst.clsQueries[qc.ID] = append(inst.clsQueries[qc.ID], int32(qi))
				}
				continue
			}
			shapeOf[string(keyBuf)] = int32(qi)
		}
		L := q.Len()
		full := uint64(1)<<uint(L) - 1
		for mask := uint64(1); mask <= full; mask++ {
			if bits.OnesCount64(mask) > kPrime {
				continue
			}
			// Byte-encode the subset's canonical key straight from the mask:
			// q is sorted, so visiting set bits low-to-high yields the
			// canonical order with no intermediate PropSet.
			keyBuf = keyBuf[:0]
			for m := mask; m != 0; m &= m - 1 {
				id := q[bits.TrailingZeros64(m)]
				keyBuf = append(keyBuf, byte(id>>24), byte(id>>16), byte(id>>8), byte(id))
			}
			id, ok := inst.byKey[string(keyBuf)]
			if !ok {
				scratch = scratch[:0]
				for m := mask; m != 0; m &= m - 1 {
					scratch = append(scratch, q[bits.TrailingZeros64(m)])
				}
				c := cm.Cost(scratch)
				if c < 0 || math.IsNaN(c) {
					return nil, fmt.Errorf("core: cost model returned invalid cost %v for classifier %v", c, scratch)
				}
				if math.IsInf(c, 1) {
					// Unavailable classifiers are omitted from the input
					// entirely; remember the verdict to avoid re-pricing.
					inst.byKey[string(keyBuf)] = NoClassifier
					continue
				}
				sub := make(PropSet, len(scratch))
				copy(sub, scratch)
				id = ClassifierID(len(inst.classifiers))
				inst.classifiers = append(inst.classifiers, sub)
				inst.costs = append(inst.costs, c)
				inst.clsQueries = append(inst.clsQueries, nil)
				inst.byKey[string(keyBuf)] = id
				inst.totalFiniteCost += c
				if sub.Len() > inst.maxClassifierLen {
					inst.maxClassifierLen = sub.Len()
				}
			} else if id == NoClassifier {
				continue
			}
			inst.queryCls[qi] = append(inst.queryCls[qi], QueryClassifier{ID: id, Mask: mask})
			inst.clsQueries[id] = append(inst.clsQueries[id], int32(qi))
		}
	}

	// Drop the negative cache entries so byKey maps only real classifiers.
	for k, id := range inst.byKey {
		if id == NoClassifier {
			delete(inst.byKey, k)
		}
	}
	return inst, nil
}

// NumQueries returns n, the number of (distinct) queries.
func (inst *Instance) NumQueries() int { return len(inst.queries) }

// Query returns the i-th query.
func (inst *Instance) Query(i int) PropSet { return inst.queries[i] }

// Queries returns the query load. The returned slice must not be modified.
func (inst *Instance) Queries() []PropSet { return inst.queries }

// NumClassifiers returns m̂, the size of the classifier universe C_Q
// (finite-cost classifiers only).
func (inst *Instance) NumClassifiers() int { return len(inst.classifiers) }

// Classifier returns the property set tested by classifier id.
func (inst *Instance) Classifier(id ClassifierID) PropSet { return inst.classifiers[id] }

// Cost returns the construction cost of classifier id.
func (inst *Instance) Cost(id ClassifierID) float64 { return inst.costs[id] }

// Costs returns the full cost vector indexed by ClassifierID. The returned
// slice must not be modified; copy it to derive effective costs.
func (inst *Instance) Costs() []float64 { return inst.costs }

// ClassifierIDOf returns the ID of the classifier testing exactly s, if it is
// part of the instance's universe.
func (inst *Instance) ClassifierIDOf(s PropSet) (ClassifierID, bool) {
	id, ok := inst.byKey[s.Key()]
	return id, ok
}

// QueryClassifiers returns the classifiers available for query i (all
// finite-cost subsets of the query), with query-local bitmasks. The returned
// slice must not be modified.
func (inst *Instance) QueryClassifiers(i int) []QueryClassifier { return inst.queryCls[i] }

// ClassifierQueries returns the indices of queries that contain classifier
// id's property set — the incidence list Q_S. The returned slice must not be
// modified.
func (inst *Instance) ClassifierQueries(id ClassifierID) []int32 { return inst.clsQueries[id] }

// Incidence returns I(S) for classifier id: the number of queries containing
// its property set.
func (inst *Instance) Incidence(id ClassifierID) int { return len(inst.clsQueries[id]) }

// MaxQueryLen returns k, the maximal query length.
func (inst *Instance) MaxQueryLen() int { return inst.maxQueryLen }

// MaxClassifierLen returns the maximal classifier length present (k' when
// the bounded-classifiers option is used, otherwise ≤ k).
func (inst *Instance) MaxClassifierLen() int { return inst.maxClassifierLen }

// SumQueryLen returns n̂ = Σ|q|, the universe size of the WSC reduction.
func (inst *Instance) SumQueryLen() int { return inst.sumQueryLen }

// TotalFiniteCost returns the sum of all classifier costs — a safe finite
// stand-in for +Inf in capacity-based reductions.
func (inst *Instance) TotalFiniteCost() float64 { return inst.totalFiniteCost }

// FullMask returns the bitmask covering all properties of query i.
func (inst *Instance) FullMask(i int) uint64 {
	return uint64(1)<<uint(inst.queries[i].Len()) - 1
}
