package core

import (
	"fmt"
	"sort"
)

// StreamingBuilder ingests a query load one query at a time and maintains the
// property→component partition incrementally, so property-disjoint groups of
// queries (the paper's Observation 3.2 components) can be sealed — handed off
// for solving — while ingestion continues. Unlike NewInstance, which
// materializes the whole load and all of C_Q before any solving begins, the
// builder holds only the queries of components that are still live: peak
// memory is proportional to the live working set, not the load.
//
// Per component, duplicate query shapes are folded on arrival (the paper
// assumes a set of distinct queries; NewInstance merges duplicates the same
// way), so a skewed stream costs memory proportional to its distinct shapes.
//
// The builder performs the same admission checks as NewInstance (non-empty
// queries, the MaxEnumQueryLen enumeration cap) and is not safe for
// concurrent use; wrap it if multiple goroutines feed one stream.
type StreamingBuilder struct {
	u    *Universe
	opts StreamOptions
	maxQ int

	parent []int32 // union-find over PropID, grown lazily with the universe
	rank   []int8
	sealed []bool // per property: belongs to an already-sealed component

	comps map[int32]*liveComponent // union-find root -> live component

	seq        int64 // queries admitted (Add calls that validated)
	folded     int64 // duplicates folded into an existing shape
	liveQ      int   // distinct queries currently held
	peakQ      int   // high watermark of liveQ
	sealedN    int   // components sealed so far
	sealedQ    int64 // distinct queries handed off in sealed components
	maxLen     int   // maximal query length seen
	keyBuf     []byte
	rootsBuf   []int32
	finishedAt int64 // set by Finish; further Adds error
}

// liveComponent is one property-connected group of queries still being grown.
type liveComponent struct {
	queries  []streamQuery
	shapes   map[string]struct{}
	last     int64 // seq of the last query that touched this component
	reopened bool  // created by a reopen of already-sealed properties
}

// streamQuery is a query plus its arrival sequence number, kept so merged
// components can restore global arrival order at seal time (solvers are
// presentation-dependent in their tie-breaking; arrival order is the
// presentation a whole-load solve would see).
type streamQuery struct {
	seq int64
	q   PropSet
}

// StreamOptions configure a StreamingBuilder.
type StreamOptions struct {
	// MaxQueryLen rejects queries longer than this during ingestion. Zero
	// means the built-in enumeration safety limit (MaxEnumQueryLen). Same
	// semantics as Options.MaxQueryLen.
	MaxQueryLen int
	// AllowReopen controls what happens when a query arrives whose
	// properties belong to an already-sealed component. By default this is
	// an error: sealing promised that component's property set was complete,
	// and solving it again would break the guarantee that a streamed solve
	// is cost-identical to a whole-load solve. With AllowReopen the
	// offending properties start a fresh component instead; the union of
	// the per-component covers remains a feasible cover of the whole load,
	// but it is only an upper bound on the whole-load solve's cost.
	AllowReopen bool
}

// SealedComponent is one property-disjoint group of queries handed off by the
// builder, ready to be solved as a standalone instance.
type SealedComponent struct {
	// Queries holds the component's distinct query shapes in arrival order.
	Queries []PropSet
	// Index is the seal sequence number (0-based): the deterministic order
	// in which components were handed off.
	Index int
	// Reopened marks a component created after its properties were already
	// sealed once (only possible with AllowReopen).
	Reopened bool
}

// StreamStats is a snapshot of the builder's counters.
type StreamStats struct {
	// Added counts admitted queries, duplicates included.
	Added int64
	// Folded counts queries dropped as duplicate shapes of a live query.
	Folded int64
	// LiveQueries is the number of distinct queries currently held.
	LiveQueries int
	// PeakLiveQueries is the high watermark of LiveQueries — the builder's
	// memory story in one number.
	PeakLiveQueries int
	// LiveComponents is the number of components still being grown.
	LiveComponents int
	// SealedComponents counts components handed off so far.
	SealedComponents int
	// SealedQueries counts distinct queries handed off in sealed components.
	SealedQueries int64
	// MaxQueryLen is the maximal query length seen so far.
	MaxQueryLen int
}

// NewStreamingBuilder returns a builder interning into u.
func NewStreamingBuilder(u *Universe, opts StreamOptions) (*StreamingBuilder, error) {
	if u == nil {
		return nil, fmt.Errorf("core: nil universe")
	}
	maxQ := opts.MaxQueryLen
	if maxQ <= 0 || maxQ > MaxEnumQueryLen {
		maxQ = MaxEnumQueryLen
	}
	return &StreamingBuilder{
		u:     u,
		opts:  opts,
		maxQ:  maxQ,
		comps: make(map[int32]*liveComponent),
	}, nil
}

// AddNames interns the property names and adds the query.
func (b *StreamingBuilder) AddNames(names ...string) error {
	ids := make([]PropID, len(names))
	for i, n := range names {
		ids[i] = b.u.Intern(n)
	}
	return b.Add(NewPropSet(ids...))
}

// Add ingests one query. The PropSet must be canonical (NewPropSet) over
// properties interned in the builder's universe; it may be retained.
func (b *StreamingBuilder) Add(q PropSet) error {
	if b.finishedAt > 0 {
		return fmt.Errorf("core: StreamingBuilder used after Finish")
	}
	if q.Empty() {
		return fmt.Errorf("core: empty query")
	}
	if q.Len() > b.maxQ {
		return fmt.Errorf("core: query %v has %d properties, limit is %d", q, q.Len(), b.maxQ)
	}
	b.grow()
	for _, p := range q {
		if p < 0 || int(p) >= len(b.parent) {
			return fmt.Errorf("core: query property %d not interned in universe", p)
		}
		if b.sealed[p] {
			if !b.opts.AllowReopen {
				return fmt.Errorf("core: property %q reappeared after its component was sealed (seal later, or set AllowReopen to accept an upper-bound cover)", b.u.Name(p))
			}
			// Reopen: the property starts over as a fresh singleton.
			b.parent[p] = int32(p)
			b.rank[p] = 0
			b.sealed[p] = false
			b.comps[int32(p)] = &liveComponent{shapes: make(map[string]struct{}), last: b.seq, queries: nil}
			b.markReopened(p)
		}
	}
	b.seq++

	// Collect the distinct roots the query's properties currently live in.
	roots := b.rootsBuf[:0]
	for _, p := range q {
		r := b.find(p)
		dup := false
		for _, seen := range roots {
			if seen == r {
				dup = true
				break
			}
		}
		if !dup {
			roots = append(roots, r)
		}
	}
	b.rootsBuf = roots

	// Duplicate-shape fold: if every property is already in one live
	// component, the shape may have been seen before.
	b.keyBuf = q.AppendKey(b.keyBuf[:0])
	if len(roots) == 1 {
		if c := b.comps[roots[0]]; c != nil {
			if _, ok := c.shapes[string(b.keyBuf)]; ok {
				b.folded++
				c.last = b.seq
				return nil
			}
		}
	}

	// Union everything into one component, merging query lists and shape
	// sets smaller-into-larger.
	root := roots[0]
	if b.comps[root] == nil {
		b.comps[root] = &liveComponent{shapes: make(map[string]struct{})}
	}
	for _, r := range roots[1:] {
		root = b.union(root, r)
	}
	c := b.comps[root]
	c.shapes[string(b.keyBuf)] = struct{}{}
	c.queries = append(c.queries, streamQuery{seq: b.seq, q: q})
	c.last = b.seq
	b.liveQ++
	if b.liveQ > b.peakQ {
		b.peakQ = b.liveQ
	}
	if q.Len() > b.maxLen {
		b.maxLen = q.Len()
	}
	return nil
}

// markReopened flags the fresh component created for a reopened property so
// its eventual SealedComponent carries the upper-bound caveat.
func (b *StreamingBuilder) markReopened(p PropID) {
	b.comps[int32(p)].reopened = true
}

// SealIdle seals and returns every live component whose last touch is at
// least window admitted queries ago — the mid-stream handoff that keeps peak
// memory bounded when the stream has property locality. Components are
// returned in a deterministic order (by their earliest query's arrival).
// window must be positive.
func (b *StreamingBuilder) SealIdle(window int64) []*SealedComponent {
	if window <= 0 {
		return nil
	}
	return b.sealWhere(func(c *liveComponent) bool {
		return b.seq-c.last >= window
	})
}

// Finish seals every remaining live component and closes the builder;
// further Adds error. Safe to call once.
func (b *StreamingBuilder) Finish() []*SealedComponent {
	out := b.sealWhere(func(*liveComponent) bool { return true })
	b.finishedAt = b.seq + 1
	return out
}

// sealWhere extracts the components matching pred, restores arrival order
// within each, marks their properties sealed, and frees the live state.
func (b *StreamingBuilder) sealWhere(pred func(*liveComponent) bool) []*SealedComponent {
	type rooted struct {
		root int32
		c    *liveComponent
	}
	var picked []rooted
	for root, c := range b.comps {
		if len(c.queries) == 0 {
			// An empty shell left behind by a reopen that immediately merged
			// elsewhere; drop it silently.
			if pred(c) {
				delete(b.comps, root)
			}
			continue
		}
		if pred(c) {
			picked = append(picked, rooted{root, c})
		}
	}
	// Deterministic seal order: by earliest arrival. Each component's query
	// list is append-ordered per merge, so its minimum seq is the earliest
	// element after sorting.
	for _, rc := range picked {
		sort.Slice(rc.c.queries, func(i, j int) bool { return rc.c.queries[i].seq < rc.c.queries[j].seq })
	}
	sort.Slice(picked, func(i, j int) bool { return picked[i].c.queries[0].seq < picked[j].c.queries[0].seq })

	out := make([]*SealedComponent, 0, len(picked))
	for _, rc := range picked {
		qs := make([]PropSet, len(rc.c.queries))
		for i, sq := range rc.c.queries {
			qs[i] = sq.q
			for _, p := range sq.q {
				b.sealed[p] = true
			}
		}
		out = append(out, &SealedComponent{Queries: qs, Index: b.sealedN, Reopened: rc.c.reopened})
		b.sealedN++
		b.sealedQ += int64(len(qs))
		b.liveQ -= len(qs)
		delete(b.comps, rc.root)
	}
	return out
}

// Stats returns a snapshot of the builder's counters.
func (b *StreamingBuilder) Stats() StreamStats {
	live := 0
	for _, c := range b.comps {
		if len(c.queries) > 0 {
			live++
		}
	}
	return StreamStats{
		Added:            b.seq,
		Folded:           b.folded,
		LiveQueries:      b.liveQ,
		PeakLiveQueries:  b.peakQ,
		LiveComponents:   live,
		SealedComponents: b.sealedN,
		SealedQueries:    b.sealedQ,
		MaxQueryLen:      b.maxLen,
	}
}

// MaxQueryLen returns the maximal query length seen so far — after Finish,
// the exact ambient length a whole-load solve would use.
func (b *StreamingBuilder) MaxQueryLen() int { return b.maxLen }

// grow extends the union-find arrays to cover every interned property.
func (b *StreamingBuilder) grow() {
	n := b.u.Size()
	for len(b.parent) < n {
		b.parent = append(b.parent, int32(len(b.parent)))
		b.rank = append(b.rank, 0)
		b.sealed = append(b.sealed, false)
	}
}

// find returns p's root with path halving.
func (b *StreamingBuilder) find(p PropID) int32 {
	x := int32(p)
	for b.parent[x] != x {
		b.parent[x] = b.parent[b.parent[x]]
		x = b.parent[x]
	}
	return x
}

// union merges the components rooted at a and b2 and returns the new root,
// moving query lists and shape sets smaller-into-larger.
func (b *StreamingBuilder) union(a, b2 int32) int32 {
	if a == b2 {
		return a
	}
	if b.rank[a] < b.rank[b2] {
		a, b2 = b2, a
	}
	ca, cb := b.comps[a], b.comps[b2]
	if ca == nil {
		ca = &liveComponent{shapes: make(map[string]struct{})}
		b.comps[a] = ca
	}
	if cb != nil {
		if len(cb.queries) > len(ca.queries) {
			// Keep the larger payload; only the root pointer follows rank.
			ca.queries, cb.queries = cb.queries, ca.queries
			ca.shapes, cb.shapes = cb.shapes, ca.shapes
		}
		ca.queries = append(ca.queries, cb.queries...)
		for k := range cb.shapes {
			ca.shapes[k] = struct{}{}
		}
		if cb.last > ca.last {
			ca.last = cb.last
		}
		ca.reopened = ca.reopened || cb.reopened
		delete(b.comps, b2)
	}
	b.parent[b2] = a
	if b.rank[a] == b.rank[b2] {
		b.rank[a]++
	}
	return a
}
