package core

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func ps(ids ...PropID) PropSet { return NewPropSet(ids...) }

func TestNewPropSetCanonicalizes(t *testing.T) {
	cases := []struct {
		in   []PropID
		want PropSet
	}{
		{nil, nil},
		{[]PropID{3}, PropSet{3}},
		{[]PropID{3, 1, 2}, PropSet{1, 2, 3}},
		{[]PropID{5, 5, 5}, PropSet{5}},
		{[]PropID{4, 1, 4, 1, 9}, PropSet{1, 4, 9}},
	}
	for _, c := range cases {
		got := NewPropSet(c.in...)
		if !got.Equal(c.want) {
			t.Errorf("NewPropSet(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestPropSetKeyRoundTrip(t *testing.T) {
	sets := []PropSet{nil, ps(0), ps(1, 2, 3), ps(0, 1<<20, 1<<30-1)}
	for _, s := range sets {
		back := KeyToPropSet(s.Key())
		if !back.Equal(s) {
			t.Errorf("KeyToPropSet(Key(%v)) = %v", s, back)
		}
	}
	if KeyToPropSet("abc") != nil {
		t.Error("KeyToPropSet should reject keys whose length is not a multiple of 4")
	}
}

func TestPropSetKeyDistinct(t *testing.T) {
	seen := map[string]PropSet{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		n := rng.Intn(6)
		ids := make([]PropID, n)
		for j := range ids {
			ids[j] = PropID(rng.Intn(50))
		}
		s := NewPropSet(ids...)
		k := s.Key()
		if prev, ok := seen[k]; ok && !prev.Equal(s) {
			t.Fatalf("key collision: %v and %v share key", prev, s)
		}
		seen[k] = s
	}
}

func TestPropSetContains(t *testing.T) {
	s := ps(2, 5, 9)
	for _, p := range []PropID{2, 5, 9} {
		if !s.Contains(p) {
			t.Errorf("%v should contain %d", s, p)
		}
	}
	for _, p := range []PropID{0, 3, 10} {
		if s.Contains(p) {
			t.Errorf("%v should not contain %d", s, p)
		}
	}
	if PropSet(nil).Contains(1) {
		t.Error("empty set contains nothing")
	}
}

func TestPropSetSubsetOf(t *testing.T) {
	cases := []struct {
		s, t PropSet
		want bool
	}{
		{nil, nil, true},
		{nil, ps(1), true},
		{ps(1), nil, false},
		{ps(1, 3), ps(1, 2, 3), true},
		{ps(1, 4), ps(1, 2, 3), false},
		{ps(1, 2, 3), ps(1, 2, 3), true},
		{ps(1, 2, 3, 4), ps(1, 2, 3), false},
	}
	for _, c := range cases {
		if got := c.s.SubsetOf(c.t); got != c.want {
			t.Errorf("%v.SubsetOf(%v) = %v, want %v", c.s, c.t, got, c.want)
		}
	}
}

func TestPropSetSetAlgebra(t *testing.T) {
	a, b := ps(1, 2, 4), ps(2, 3, 4, 6)
	if got := a.Union(b); !got.Equal(ps(1, 2, 3, 4, 6)) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b); !got.Equal(ps(2, 4)) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Minus(b); !got.Equal(ps(1)) {
		t.Errorf("Minus = %v", got)
	}
	if got := b.Minus(a); !got.Equal(ps(3, 6)) {
		t.Errorf("Minus = %v", got)
	}
	if !a.Intersects(b) {
		t.Error("a and b intersect")
	}
	if ps(1, 2).Intersects(ps(3, 4)) {
		t.Error("disjoint sets should not intersect")
	}
}

func TestPropSetImmutability(t *testing.T) {
	a, b := ps(1, 3), ps(2, 4)
	aCopy := append(PropSet(nil), a...)
	bCopy := append(PropSet(nil), b...)
	_ = a.Union(b)
	_ = a.Intersect(b)
	_ = a.Minus(b)
	if !a.Equal(aCopy) || !b.Equal(bCopy) {
		t.Error("set operations must not mutate their operands")
	}
}

func TestSubsetByMask(t *testing.T) {
	s := ps(10, 20, 30)
	cases := []struct {
		mask uint64
		want PropSet
	}{
		{0b000, nil},
		{0b001, ps(10)},
		{0b010, ps(20)},
		{0b101, ps(10, 30)},
		{0b111, ps(10, 20, 30)},
	}
	for _, c := range cases {
		if got := s.SubsetByMask(c.mask); !got.Equal(c.want) {
			t.Errorf("SubsetByMask(%b) = %v, want %v", c.mask, got, c.want)
		}
	}
}

func TestMaskIn(t *testing.T) {
	q := ps(10, 20, 30, 40)
	cases := []struct {
		s    PropSet
		want uint64
		ok   bool
	}{
		{nil, 0, true},
		{ps(10), 0b0001, true},
		{ps(20, 40), 0b1010, true},
		{ps(10, 20, 30, 40), 0b1111, true},
		{ps(15), 0, false},
		{ps(10, 50), 0, false},
	}
	for _, c := range cases {
		got, ok := c.s.MaskIn(q)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("MaskIn(%v, %v) = %b,%v want %b,%v", c.s, q, got, ok, c.want, c.ok)
		}
	}
}

func TestMaskInSubsetByMaskInverse(t *testing.T) {
	f := func(qRaw []uint16, mask uint64) bool {
		ids := make([]PropID, len(qRaw))
		for i, v := range qRaw {
			ids[i] = PropID(v % 100)
		}
		q := NewPropSet(ids...)
		if q.Len() > 64 {
			return true
		}
		mask &= uint64(1)<<uint(q.Len()) - 1
		sub := q.SubsetByMask(mask)
		got, ok := sub.MaskIn(q)
		return ok && got == mask
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestUnionIsCommutativeAndIdempotent(t *testing.T) {
	gen := func(raw []uint16) PropSet {
		ids := make([]PropID, len(raw))
		for i, v := range raw {
			ids[i] = PropID(v % 40)
		}
		return NewPropSet(ids...)
	}
	f := func(aRaw, bRaw []uint16) bool {
		a, b := gen(aRaw), gen(bRaw)
		ab, ba := a.Union(b), b.Union(a)
		return ab.Equal(ba) && ab.Union(a).Equal(ab) && a.SubsetOf(ab) && b.SubsetOf(ab)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMinusIntersectPartition(t *testing.T) {
	// a = (a\b) ∪ (a∩b), and the two parts are disjoint.
	gen := func(raw []uint16) PropSet {
		ids := make([]PropID, len(raw))
		for i, v := range raw {
			ids[i] = PropID(v % 40)
		}
		return NewPropSet(ids...)
	}
	f := func(aRaw, bRaw []uint16) bool {
		a, b := gen(aRaw), gen(bRaw)
		diff, inter := a.Minus(b), a.Intersect(b)
		if diff.Intersects(inter) {
			return false
		}
		return diff.Union(inter).Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPropSetSortedInvariant(t *testing.T) {
	f := func(raw []uint16) bool {
		ids := make([]PropID, len(raw))
		for i, v := range raw {
			ids[i] = PropID(v)
		}
		s := NewPropSet(ids...)
		return sort.SliceIsSorted(s, func(i, j int) bool { return s[i] < s[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropSetString(t *testing.T) {
	if got := ps(3, 1, 2).String(); got != "{1,2,3}" {
		t.Errorf("String = %q", got)
	}
	if got := PropSet(nil).String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
}

func TestUniverseIntern(t *testing.T) {
	u := NewUniverse()
	a := u.Intern("color:white")
	b := u.Intern("brand:adidas")
	if a == b {
		t.Fatal("distinct names must get distinct IDs")
	}
	if got := u.Intern("color:white"); got != a {
		t.Error("re-interning must return the same ID")
	}
	if u.Name(a) != "color:white" || u.Name(b) != "brand:adidas" {
		t.Error("Name round-trip failed")
	}
	if u.Size() != 2 {
		t.Errorf("Size = %d, want 2", u.Size())
	}
	if _, ok := u.Lookup("nope"); ok {
		t.Error("Lookup of unknown name must report !ok")
	}
	if id, ok := u.Lookup("brand:adidas"); !ok || id != b {
		t.Error("Lookup of known name failed")
	}
}

func TestUniverseSetAndNames(t *testing.T) {
	u := NewUniverse()
	s := u.Set("b", "a", "b", "c")
	if s.Len() != 3 {
		t.Fatalf("Set length = %d, want 3", s.Len())
	}
	names := u.SetNames(s)
	if !reflect.DeepEqual(names, []string{"a", "b", "c"}) {
		t.Errorf("SetNames = %v", names)
	}
	all := u.Names()
	if !reflect.DeepEqual(all, []string{"b", "a", "c"}) {
		t.Errorf("Names (ID order) = %v", all)
	}
	all[0] = "mutated"
	if u.Name(0) == "mutated" {
		t.Error("Names must return a copy")
	}
}

func TestUniverseNamePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Name on out-of-range ID must panic")
		}
	}()
	NewUniverse().Name(0)
}
