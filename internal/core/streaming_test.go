package core

import (
	"strings"
	"testing"
)

// addNames is a test shorthand.
func addNames(t *testing.T, b *StreamingBuilder, names ...string) {
	t.Helper()
	if err := b.AddNames(names...); err != nil {
		t.Fatalf("AddNames(%v): %v", names, err)
	}
}

func TestStreamingBuilderPartition(t *testing.T) {
	u := NewUniverse()
	b, err := NewStreamingBuilder(u, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Two components: {a,b,c} linked via shared properties, {x,y} separate.
	addNames(t, b, "a", "b")
	addNames(t, b, "x", "y")
	addNames(t, b, "b", "c")
	addNames(t, b, "x")
	comps := b.Finish()
	if len(comps) != 2 {
		t.Fatalf("components = %d, want 2", len(comps))
	}
	// Seal order follows earliest arrival: the a/b component first.
	if got := len(comps[0].Queries); got != 2 {
		t.Errorf("component 0 has %d queries, want 2", got)
	}
	if got := len(comps[1].Queries); got != 2 {
		t.Errorf("component 1 has %d queries, want 2", got)
	}
	if comps[0].Index != 0 || comps[1].Index != 1 {
		t.Errorf("indices = %d,%d, want 0,1", comps[0].Index, comps[1].Index)
	}
	// Arrival order within a component is preserved.
	if comps[0].Queries[0].Len() != 2 || comps[1].Queries[1].Len() != 1 {
		t.Errorf("queries out of arrival order: %v / %v", comps[0].Queries, comps[1].Queries)
	}
}

// TestStreamingBuilderMatchesInstancePartition checks that the builder's
// partition agrees with the materialized instance path on a non-trivial
// load: same number of distinct queries and same component count as prep
// would find (components here = property-connectivity classes).
func TestStreamingBuilderMatchesInstanceFold(t *testing.T) {
	u := NewUniverse()
	b, err := NewStreamingBuilder(u, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	load := [][]string{
		{"a", "b"}, {"c", "d"}, {"a", "b"}, {"b", "e"}, {"c", "d"}, {"f"},
		{"d", "g"}, {"a"}, {"f"},
	}
	var queries []PropSet
	for _, names := range load {
		ids := make([]PropID, len(names))
		for i, n := range names {
			ids[i] = u.Intern(n)
		}
		q := NewPropSet(ids...)
		queries = append(queries, q)
		if err := b.Add(q); err != nil {
			t.Fatal(err)
		}
	}
	inst, err := NewInstance(u, queries, UniformCost(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	comps := b.Finish()
	total := 0
	for _, c := range comps {
		total += len(c.Queries)
	}
	if total != inst.NumQueries() {
		t.Errorf("distinct queries: builder %d, instance %d", total, inst.NumQueries())
	}
	if len(comps) != 3 { // {a,b,e}, {c,d,g}, {f}
		t.Errorf("components = %d, want 3", len(comps))
	}
	st := b.Stats()
	if st.Folded != 3 {
		t.Errorf("folded = %d, want 3", st.Folded)
	}
	if st.Added != int64(len(load)) {
		t.Errorf("added = %d, want %d", st.Added, len(load))
	}
}

func TestStreamingBuilderIdleSealAndPeak(t *testing.T) {
	u := NewUniverse()
	b, err := NewStreamingBuilder(u, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	addNames(t, b, "a", "b")
	addNames(t, b, "a", "c")
	// Grow a second component long enough that the first goes idle.
	for i := 0; i < 10; i++ {
		addNames(t, b, "x", "y")
		addNames(t, b, "y", "z"+strings.Repeat("z", i))
	}
	sealed := b.SealIdle(5)
	if len(sealed) != 1 {
		t.Fatalf("idle-sealed components = %d, want 1 (the a/b/c component)", len(sealed))
	}
	if got := len(sealed[0].Queries); got != 2 {
		t.Errorf("sealed component has %d queries, want 2", got)
	}
	st := b.Stats()
	if st.SealedComponents != 1 || st.SealedQueries != 2 {
		t.Errorf("stats sealed = %d/%d, want 1/2", st.SealedComponents, st.SealedQueries)
	}
	if st.LiveQueries >= st.PeakLiveQueries {
		t.Errorf("live %d should have dropped below peak %d after sealing", st.LiveQueries, st.PeakLiveQueries)
	}
	rest := b.Finish()
	if len(rest) != 1 {
		t.Fatalf("finish sealed %d components, want 1", len(rest))
	}
	if rest[0].Index != 1 {
		t.Errorf("second component index = %d, want 1", rest[0].Index)
	}
}

func TestStreamingBuilderSealedReappearance(t *testing.T) {
	u := NewUniverse()
	b, err := NewStreamingBuilder(u, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	addNames(t, b, "a", "b")
	addNames(t, b, "x")
	if got := len(b.SealIdle(1)); got != 1 {
		t.Fatalf("idle seal = %d components, want 1", got)
	}
	// "a" belongs to the sealed component: strict mode must refuse.
	err = b.AddNames("a", "c")
	if err == nil {
		t.Fatal("expected an error for a sealed property's reappearance")
	}
	if !strings.Contains(err.Error(), `"a"`) || !strings.Contains(err.Error(), "AllowReopen") {
		t.Errorf("error should name the property and the escape hatch, got: %v", err)
	}

	// AllowReopen accepts the query as a fresh, flagged component.
	u2 := NewUniverse()
	b2, err := NewStreamingBuilder(u2, StreamOptions{AllowReopen: true})
	if err != nil {
		t.Fatal(err)
	}
	addNames(t, b2, "a", "b")
	addNames(t, b2, "x")
	if got := len(b2.SealIdle(1)); got != 1 {
		t.Fatalf("idle seal = %d components, want 1", got)
	}
	addNames(t, b2, "a", "c")
	comps := b2.Finish()
	var reopened *SealedComponent
	for _, c := range comps {
		if c.Reopened {
			reopened = c
		}
	}
	if reopened == nil {
		t.Fatal("no component flagged Reopened")
	}
	if len(reopened.Queries) != 1 || reopened.Queries[0].Len() != 2 {
		t.Errorf("reopened component queries = %v, want one 2-query", reopened.Queries)
	}
}

func TestStreamingBuilderErrors(t *testing.T) {
	u := NewUniverse()
	b, err := NewStreamingBuilder(u, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Add(PropSet{}); err == nil {
		t.Error("empty query must error")
	}
	long := make([]string, MaxEnumQueryLen+1)
	for i := range long {
		long[i] = strings.Repeat("p", i+1)
	}
	if err := b.AddNames(long...); err == nil {
		t.Error("over-limit query must error")
	}
	addNames(t, b, "a")
	b.Finish()
	if err := b.AddNames("b"); err == nil {
		t.Error("Add after Finish must error")
	}
	if _, err := NewStreamingBuilder(nil, StreamOptions{}); err == nil {
		t.Error("nil universe must error")
	}
}
