package core

import (
	"math"
	"strings"
	"testing"
)

// paperExample builds Example 1.1 from the paper: queries {JWA, CA} with the
// cost table C:5, A:5, J:5, W:1, AC:3, AW:5, AJ:3, JW:4, JAW:5.
// The optimal solution is {AC, AJ, W} with cost 7.
func paperExample(t testing.TB) (*Universe, *Instance) {
	t.Helper()
	u := NewUniverse()
	j, w, a, c := u.Intern("team:juventus"), u.Intern("color:white"), u.Intern("brand:adidas"), u.Intern("team:chelsea")
	queries := []PropSet{NewPropSet(j, w, a), NewPropSet(c, a)}
	ct := NewCostTable(math.Inf(1))
	ct.Set(NewPropSet(c), 5)
	ct.Set(NewPropSet(a), 5)
	ct.Set(NewPropSet(j), 5)
	ct.Set(NewPropSet(w), 1)
	ct.Set(NewPropSet(a, c), 3)
	ct.Set(NewPropSet(a, w), 5)
	ct.Set(NewPropSet(a, j), 3)
	ct.Set(NewPropSet(j, w), 4)
	ct.Set(NewPropSet(j, a, w), 5)
	inst, err := NewInstance(u, queries, ct, Options{})
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	return u, inst
}

func TestInstancePaperExample(t *testing.T) {
	u, inst := paperExample(t)
	if inst.NumQueries() != 2 {
		t.Fatalf("NumQueries = %d", inst.NumQueries())
	}
	// C_Q has 9 finite-cost classifiers (all listed ones).
	if inst.NumClassifiers() != 9 {
		t.Fatalf("NumClassifiers = %d, want 9", inst.NumClassifiers())
	}
	if inst.MaxQueryLen() != 3 {
		t.Errorf("MaxQueryLen = %d, want 3", inst.MaxQueryLen())
	}
	if inst.SumQueryLen() != 5 {
		t.Errorf("SumQueryLen = %d, want 5", inst.SumQueryLen())
	}
	a, _ := u.Lookup("brand:adidas")
	cID, ok := inst.ClassifierIDOf(NewPropSet(a))
	if !ok {
		t.Fatal("classifier A must exist")
	}
	if inst.Cost(cID) != 5 {
		t.Errorf("Cost(A) = %v, want 5", inst.Cost(cID))
	}
	// A appears in both queries: incidence 2.
	if inst.Incidence(cID) != 2 {
		t.Errorf("Incidence(A) = %d, want 2", inst.Incidence(cID))
	}
}

func TestInstanceOptimalSolutionVerifies(t *testing.T) {
	u, inst := paperExample(t)
	j, _ := u.Lookup("team:juventus")
	w, _ := u.Lookup("color:white")
	a, _ := u.Lookup("brand:adidas")
	c, _ := u.Lookup("team:chelsea")
	var ids []ClassifierID
	for _, s := range []PropSet{NewPropSet(a, c), NewPropSet(a, j), NewPropSet(w)} {
		id, ok := inst.ClassifierIDOf(s)
		if !ok {
			t.Fatalf("classifier %v missing", s)
		}
		ids = append(ids, id)
	}
	sol := NewSolution(inst, ids)
	if sol.Cost != 7 {
		t.Errorf("optimal cost = %v, want 7", sol.Cost)
	}
	if err := inst.Verify(sol); err != nil {
		t.Errorf("Verify(optimal) = %v", err)
	}
}

func TestInstanceIncompleteSolutionFailsVerify(t *testing.T) {
	u, inst := paperExample(t)
	a, _ := u.Lookup("brand:adidas")
	c, _ := u.Lookup("team:chelsea")
	id, _ := inst.ClassifierIDOf(NewPropSet(a, c))
	sol := NewSolution(inst, []ClassifierID{id})
	if err := inst.Verify(sol); err == nil {
		t.Error("Verify must reject a solution leaving the JWA query uncovered")
	}
}

func TestInstanceVerifyRejectsBadCost(t *testing.T) {
	u, inst := paperExample(t)
	a, _ := u.Lookup("brand:adidas")
	c, _ := u.Lookup("team:chelsea")
	j, _ := u.Lookup("team:juventus")
	w, _ := u.Lookup("color:white")
	var ids []ClassifierID
	for _, s := range []PropSet{NewPropSet(a, c), NewPropSet(a, j), NewPropSet(w)} {
		id, _ := inst.ClassifierIDOf(s)
		ids = append(ids, id)
	}
	sol := NewSolution(inst, ids)
	sol.Cost = 3 // lie
	if err := inst.Verify(sol); err == nil || !strings.Contains(err.Error(), "cost") {
		t.Errorf("Verify must reject mismatched cost, got %v", err)
	}
}

func TestInstanceVerifyRejectsBadIDs(t *testing.T) {
	_, inst := paperExample(t)
	if err := inst.Verify(&Solution{Selected: []ClassifierID{99}, Cost: 0}); err == nil {
		t.Error("Verify must reject out-of-range IDs")
	}
	if err := inst.Verify(&Solution{Selected: []ClassifierID{1, 1}, Cost: inst.Cost(1) * 2}); err == nil {
		t.Error("Verify must reject duplicate IDs")
	}
	if err := inst.Verify(nil); err == nil {
		t.Error("Verify must reject nil")
	}
}

func TestInstanceDeduplicatesQueries(t *testing.T) {
	u := NewUniverse()
	q := u.Set("x", "y")
	inst, err := NewInstance(u, []PropSet{q, q, q}, UniformCost(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if inst.NumQueries() != 1 {
		t.Errorf("NumQueries = %d, want 1 after dedup", inst.NumQueries())
	}
	kept, err := NewInstance(u, []PropSet{q, q}, UniformCost(1), Options{KeepDuplicateQueries: true})
	if err != nil {
		t.Fatal(err)
	}
	if kept.NumQueries() != 2 {
		t.Errorf("NumQueries = %d, want 2 with KeepDuplicateQueries", kept.NumQueries())
	}
}

func TestInstanceRejectsEmptyInput(t *testing.T) {
	u := NewUniverse()
	if _, err := NewInstance(u, nil, UniformCost(1), Options{}); err == nil {
		t.Error("no queries must be rejected")
	}
	if _, err := NewInstance(u, []PropSet{nil}, UniformCost(1), Options{}); err == nil {
		t.Error("empty query must be rejected")
	}
	if _, err := NewInstance(nil, []PropSet{u.Set("x")}, UniformCost(1), Options{}); err == nil {
		t.Error("nil universe must be rejected")
	}
	if _, err := NewInstance(u, []PropSet{u.Set("x")}, nil, Options{}); err == nil {
		t.Error("nil cost model must be rejected")
	}
}

func TestInstanceRejectsBadCosts(t *testing.T) {
	u := NewUniverse()
	q := u.Set("x", "y")
	if _, err := NewInstance(u, []PropSet{q}, UniformCost(-1), Options{}); err == nil {
		t.Error("negative costs must be rejected")
	}
	nan := CostFunc(func(PropSet) float64 { return math.NaN() })
	if _, err := NewInstance(u, []PropSet{q}, nan, Options{}); err == nil {
		t.Error("NaN costs must be rejected")
	}
}

func TestInstanceRejectsOverlongQuery(t *testing.T) {
	u := NewUniverse()
	ids := make([]PropID, MaxEnumQueryLen+1)
	for i := range ids {
		ids[i] = PropID(i)
		u.Intern(strings.Repeat("p", i+1))
	}
	if _, err := NewInstance(u, []PropSet{NewPropSet(ids...)}, UniformCost(1), Options{}); err == nil {
		t.Error("queries beyond MaxEnumQueryLen must be rejected")
	}
	q3 := NewPropSet(0, 1, 2)
	if _, err := NewInstance(u, []PropSet{q3}, UniformCost(1), Options{MaxQueryLen: 2}); err == nil {
		t.Error("queries beyond Options.MaxQueryLen must be rejected")
	}
}

func TestInstanceInfiniteCostsOmitted(t *testing.T) {
	u := NewUniverse()
	q := u.Set("x", "y", "z")
	// Only singletons are available.
	cm := CostFunc(func(s PropSet) float64 {
		if s.Len() == 1 {
			return 2
		}
		return math.Inf(1)
	})
	inst, err := NewInstance(u, []PropSet{q}, cm, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if inst.NumClassifiers() != 3 {
		t.Errorf("NumClassifiers = %d, want 3 (singletons only)", inst.NumClassifiers())
	}
	if got := len(inst.QueryClassifiers(0)); got != 3 {
		t.Errorf("QueryClassifiers = %d entries, want 3", got)
	}
	if inst.MaxClassifierLen() != 1 {
		t.Errorf("MaxClassifierLen = %d, want 1", inst.MaxClassifierLen())
	}
}

func TestInstanceBoundedClassifiers(t *testing.T) {
	u := NewUniverse()
	q := u.Set("x", "y", "z")
	inst, err := NewInstance(u, []PropSet{q}, UniformCost(1), Options{MaxClassifierLen: 2})
	if err != nil {
		t.Fatal(err)
	}
	// C(3,1)+C(3,2) = 6 classifiers.
	if inst.NumClassifiers() != 6 {
		t.Errorf("NumClassifiers = %d, want 6 with k'=2", inst.NumClassifiers())
	}
	if inst.MaxClassifierLen() != 2 {
		t.Errorf("MaxClassifierLen = %d, want 2", inst.MaxClassifierLen())
	}
}

func TestInstanceSharedClassifierAcrossQueries(t *testing.T) {
	u := NewUniverse()
	q1 := u.Set("x", "y")
	q2 := u.Set("y", "z")
	inst, err := NewInstance(u, []PropSet{q1, q2}, UniformCost(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Universe: X, Y, XY, Z, YZ — Y shared.
	if inst.NumClassifiers() != 5 {
		t.Fatalf("NumClassifiers = %d, want 5", inst.NumClassifiers())
	}
	y, _ := u.Lookup("y")
	yID, ok := inst.ClassifierIDOf(NewPropSet(y))
	if !ok {
		t.Fatal("Y missing")
	}
	if inst.Incidence(yID) != 2 {
		t.Errorf("Incidence(Y) = %d, want 2", inst.Incidence(yID))
	}
	qs := inst.ClassifierQueries(yID)
	if len(qs) != 2 {
		t.Errorf("ClassifierQueries(Y) = %v", qs)
	}
}

func TestCoveredSemantics(t *testing.T) {
	u := NewUniverse()
	q := u.Set("x", "y", "z")
	inst, err := NewInstance(u, []PropSet{q}, UniformCost(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	x, _ := u.Lookup("x")
	y, _ := u.Lookup("y")
	z, _ := u.Lookup("z")
	idXY, _ := inst.ClassifierIDOf(NewPropSet(x, y))
	idYZ, _ := inst.ClassifierIDOf(NewPropSet(y, z))
	idX, _ := inst.ClassifierIDOf(NewPropSet(x))

	// Overlapping classifiers may combine: {XY, YZ} covers xyz.
	if cov := inst.Covered([]ClassifierID{idXY, idYZ}); !cov[0] {
		t.Error("{XY,YZ} must cover xyz")
	}
	// {XY, X} does not.
	if cov := inst.Covered([]ClassifierID{idXY, idX}); cov[0] {
		t.Error("{XY,X} must not cover xyz")
	}
	if !inst.CoversQuery(0, map[ClassifierID]bool{idXY: true, idYZ: true}) {
		t.Error("CoversQuery disagrees with Covered")
	}
}

func TestCostTable(t *testing.T) {
	u := NewUniverse()
	s := u.Set("a", "b")
	ct := NewCostTable(7)
	ct.Set(s, 3)
	if got := ct.Cost(s); got != 3 {
		t.Errorf("Cost(set) = %v", got)
	}
	if got := ct.Cost(u.Set("a")); got != 7 {
		t.Errorf("Cost(default) = %v", got)
	}
}

func TestAnalyzeParams(t *testing.T) {
	_, inst := paperExample(t)
	p := Analyze(inst)
	if p.NumQueries != 2 || p.NumProperties != 4 || p.NumClassifiers != 9 {
		t.Errorf("basic params wrong: %+v", p)
	}
	if p.MaxQueryLen != 3 {
		t.Errorf("MaxQueryLen = %d", p.MaxQueryLen)
	}
	if p.SumQueryLen != 5 {
		t.Errorf("SumQueryLen = %d", p.SumQueryLen)
	}
	// A is in both queries → I = 2.
	if p.Incidence != 2 {
		t.Errorf("Incidence = %d, want 2", p.Incidence)
	}
	// In query jwa, property a is in classifiers A, AW, AJ, JAW → f = 4 = 2^{k-1}.
	if p.Frequency != 4 {
		t.Errorf("Frequency = %d, want 4", p.Frequency)
	}
	// Degree: |S|·I(S); JAW has |S|=3, I=1 → 3; A has |S|=1, I=2 → 2. Max is 3.
	if p.Degree != 3 {
		t.Errorf("Degree = %d, want 3", p.Degree)
	}
}

func TestAnalyzeBoundedClassifiersFrequency(t *testing.T) {
	u := NewUniverse()
	q := u.Set("x", "y", "z", "w")
	inst, err := NewInstance(u, []PropSet{q}, UniformCost(1), Options{MaxClassifierLen: 2})
	if err != nil {
		t.Fatal(err)
	}
	p := Analyze(inst)
	// For k'=2: each property is in its singleton plus (k−1) pairs → f = k = 4.
	if p.Frequency != 4 {
		t.Errorf("Frequency = %d, want k=4 for k'=2 (Section 5.3)", p.Frequency)
	}
}

func TestRepresentationSize(t *testing.T) {
	// A single disjoint query of length k with all classifiers priced:
	// size = k + k·2^{k−1} = k(1 + 2^{k−1}) — the paper's bound met with
	// equality.
	u := NewUniverse()
	q := u.Set("a", "b", "c")
	inst, err := NewInstance(u, []PropSet{q}, UniformCost(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	k := 3
	want := k * (1 + 1<<(k-1)) // 3·(1+4) = 15
	if got := RepresentationSize(inst); got != want {
		t.Errorf("RepresentationSize = %d, want %d", got, want)
	}

	// Omitting classifiers (infinite cost) shrinks the representation,
	// matching the paper's remark that such classifiers are not counted.
	cm := CostFunc(func(s PropSet) float64 {
		if s.Len() > 1 {
			return math.Inf(1)
		}
		return 1
	})
	inst2, err := NewInstance(u, []PropSet{q}, cm, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := RepresentationSize(inst2); got != 3+3 {
		t.Errorf("RepresentationSize (singletons only) = %d, want 6", got)
	}
}
