package core

import (
	"fmt"
	"math"
	"sort"
)

// Solution is a set of classifiers selected to cover the query load, plus its
// total construction cost (the sum of the selected classifiers' costs).
type Solution struct {
	// Selected holds the chosen classifier IDs, sorted ascending, unique.
	Selected []ClassifierID
	// Cost is the total construction cost of the selected classifiers.
	Cost float64
}

// NewSolution builds a canonical Solution from ids, deduplicating and
// computing the cost against inst.
func NewSolution(inst *Instance, ids []ClassifierID) *Solution {
	sorted := make([]ClassifierID, len(ids))
	copy(sorted, ids)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	w := 0
	for r := 0; r < len(sorted); r++ {
		if w == 0 || sorted[r] != sorted[w-1] {
			sorted[w] = sorted[r]
			w++
		}
	}
	sorted = sorted[:w]
	var cost float64
	for _, id := range sorted {
		cost += inst.Cost(id)
	}
	return &Solution{Selected: sorted, Cost: cost}
}

// Has reports whether classifier id is part of the solution.
func (s *Solution) Has(id ClassifierID) bool {
	i := sort.Search(len(s.Selected), func(i int) bool { return s.Selected[i] >= id })
	return i < len(s.Selected) && s.Selected[i] == id
}

// Covered reports, per query, whether the selected classifiers cover it. A
// query q is covered iff the union of selected classifiers that are subsets
// of q equals q (Section 2.1; monotonicity makes restricting to subsets of q
// sufficient).
func (inst *Instance) Covered(selected []ClassifierID) []bool {
	in := make([]bool, inst.NumClassifiers())
	for _, id := range selected {
		in[id] = true
	}
	out := make([]bool, inst.NumQueries())
	for qi := range out {
		var union uint64
		full := inst.FullMask(qi)
		for _, qc := range inst.queryCls[qi] {
			if in[qc.ID] {
				union |= qc.Mask
				if union == full {
					break
				}
			}
		}
		out[qi] = union == full
	}
	return out
}

// CoversQuery reports whether the selected classifiers cover query qi.
func (inst *Instance) CoversQuery(qi int, selected map[ClassifierID]bool) bool {
	var union uint64
	full := inst.FullMask(qi)
	for _, qc := range inst.queryCls[qi] {
		if selected[qc.ID] {
			union |= qc.Mask
			if union == full {
				return true
			}
		}
	}
	return union == full
}

// SolutionCost sums the costs of the given classifier IDs (without
// deduplication; callers pass canonical sets).
func (inst *Instance) SolutionCost(ids []ClassifierID) float64 {
	var c float64
	for _, id := range ids {
		c += inst.Cost(id)
	}
	return c
}

// Verify checks that sol is a feasible solution for inst: every classifier ID
// is valid, the recorded cost matches the selected set, and every query is
// covered. It returns nil iff the solution is valid.
func (inst *Instance) Verify(sol *Solution) error {
	if sol == nil {
		return fmt.Errorf("core: nil solution")
	}
	for i, id := range sol.Selected {
		if id < 0 || int(id) >= inst.NumClassifiers() {
			return fmt.Errorf("core: solution contains invalid classifier ID %d", id)
		}
		if i > 0 && sol.Selected[i-1] >= id {
			return fmt.Errorf("core: solution IDs not sorted/unique at index %d", i)
		}
	}
	want := inst.SolutionCost(sol.Selected)
	if math.Abs(want-sol.Cost) > costTolerance(want) {
		return fmt.Errorf("core: solution cost %v does not match selected-set cost %v", sol.Cost, want)
	}
	covered := inst.Covered(sol.Selected)
	for qi, ok := range covered {
		if !ok {
			return fmt.Errorf("core: query %d (%v) is not covered", qi, inst.Query(qi))
		}
	}
	return nil
}

// costTolerance returns the absolute tolerance used when comparing summed
// costs: exact for the integer costs used throughout the paper's datasets,
// forgiving of float accumulation order otherwise.
func costTolerance(ref float64) float64 {
	t := 1e-9 * math.Abs(ref)
	if t < 1e-9 {
		t = 1e-9
	}
	return t
}
