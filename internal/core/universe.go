// Package core defines the data model for the MC³ problem
// (Minimization of Classifier Construction Cost for Search Queries,
// SIGMOD 2020): properties, queries, classifiers, problem instances,
// solutions, and the instance parameters (incidence, frequency, degree)
// used by the paper's approximation analysis.
//
// Properties are interned strings. Queries and classifiers are canonical
// sorted sets of property IDs. An Instance materializes the classifier
// universe C_Q — every non-empty subset of every query that the cost model
// prices below +Inf — exactly as defined in Section 2.1 of the paper.
package core

import (
	"fmt"
	"sort"
)

// PropID is a dense identifier for an interned property.
type PropID int32

// Universe interns property names to dense PropIDs. The zero value is not
// usable; create one with NewUniverse.
type Universe struct {
	names []string
	ids   map[string]PropID
}

// NewUniverse returns an empty property universe.
func NewUniverse() *Universe {
	return &Universe{ids: make(map[string]PropID)}
}

// Intern returns the PropID for name, assigning a fresh ID on first use.
func (u *Universe) Intern(name string) PropID {
	if id, ok := u.ids[name]; ok {
		return id
	}
	id := PropID(len(u.names))
	u.names = append(u.names, name)
	u.ids[name] = id
	return id
}

// Lookup returns the PropID for name and whether it has been interned.
func (u *Universe) Lookup(name string) (PropID, bool) {
	id, ok := u.ids[name]
	return id, ok
}

// Name returns the property name for id. It panics if id was never assigned.
func (u *Universe) Name(id PropID) string {
	if id < 0 || int(id) >= len(u.names) {
		panic(fmt.Sprintf("core: PropID %d out of range [0,%d)", id, len(u.names)))
	}
	return u.names[id]
}

// Size returns the number of interned properties.
func (u *Universe) Size() int { return len(u.names) }

// Names returns the names of all interned properties in ID order.
// The returned slice is a copy.
func (u *Universe) Names() []string {
	out := make([]string, len(u.names))
	copy(out, u.names)
	return out
}

// Set interns all names and returns them as a canonical PropSet.
func (u *Universe) Set(names ...string) PropSet {
	ids := make([]PropID, len(names))
	for i, n := range names {
		ids[i] = u.Intern(n)
	}
	return NewPropSet(ids...)
}

// SetNames maps a PropSet back to sorted property names.
func (u *Universe) SetNames(s PropSet) []string {
	out := make([]string, len(s))
	for i, id := range s {
		out[i] = u.Name(id)
	}
	sort.Strings(out)
	return out
}
