package core

import "math/bits"

// Params are the instance parameters of Section 5's approximation analysis:
// the incidence I, and the frequency f and degree Δ of the instance's
// Weighted Set Cover reduction (Section 5.2, "Parameter analysis").
type Params struct {
	// NumQueries is n.
	NumQueries int
	// NumProperties is |P| restricted to properties appearing in queries.
	NumProperties int
	// NumClassifiers is m̂, the number of finite-cost classifiers in C_Q.
	NumClassifiers int
	// MaxQueryLen is k.
	MaxQueryLen int
	// MaxClassifierLen is the maximal classifier length (k' if bounded).
	MaxClassifierLen int
	// SumQueryLen is n̂ = Σ|q|, the WSC universe size.
	SumQueryLen int
	// Incidence is I = max over finite-cost classifiers S of I(S) = |Q_S|.
	Incidence int
	// Frequency is f: the maximal number of classifiers containing any
	// single element (p,q) of the WSC universe; bounded by 2^{k−1} in
	// general and by Σ_{i<k'} C(k−1,i) with bounded classifiers.
	Frequency int
	// Degree is Δ: the maximal WSC set size, |S|·I(S); bounded by (k−1)·I
	// for instances surviving preprocessing.
	Degree int
}

// Analyze computes the Params of inst by direct inspection (not the worst-
// case bounds — the actual values, which the approximation guarantees of
// Theorem 5.3 then apply to).
func Analyze(inst *Instance) Params {
	p := Params{
		NumQueries:       inst.NumQueries(),
		NumClassifiers:   inst.NumClassifiers(),
		MaxQueryLen:      inst.MaxQueryLen(),
		MaxClassifierLen: inst.MaxClassifierLen(),
		SumQueryLen:      inst.SumQueryLen(),
	}

	props := make(map[PropID]bool)
	for _, q := range inst.Queries() {
		for _, id := range q {
			props[id] = true
		}
	}
	p.NumProperties = len(props)

	for id := 0; id < inst.NumClassifiers(); id++ {
		cid := ClassifierID(id)
		inc := inst.Incidence(cid)
		if inc > p.Incidence {
			p.Incidence = inc
		}
		if d := inst.Classifier(cid).Len() * inc; d > p.Degree {
			p.Degree = d
		}
	}

	// Frequency: for each query and each of its property positions, count
	// classifiers (⊆ the query) whose mask includes that position.
	for qi := 0; qi < inst.NumQueries(); qi++ {
		L := inst.Query(qi).Len()
		counts := make([]int, L)
		for _, qc := range inst.QueryClassifiers(qi) {
			m := qc.Mask
			for m != 0 {
				j := bits.TrailingZeros64(m)
				counts[j]++
				m &= m - 1
			}
		}
		for _, c := range counts {
			if c > p.Frequency {
				p.Frequency = c
			}
		}
	}
	return p
}

// RepresentationSize returns the input-size measure of Section 2.1: the sum
// of query lengths plus the sum of lengths of all finite-cost classifiers in
// C_Q (the paper treats W's input size as the total length of its domain,
// ignoring logarithmic factors). For disjoint maximal queries this is
// nk·(1 + 2^{k−1}), i.e. Θ(n) for constant k.
func RepresentationSize(inst *Instance) int {
	size := inst.SumQueryLen()
	for id := 0; id < inst.NumClassifiers(); id++ {
		size += inst.Classifier(ClassifierID(id)).Len()
	}
	return size
}
