package core

import (
	"sort"
	"strconv"
	"strings"
)

// PropSet is a canonical set of properties: sorted ascending with no
// duplicates. Queries and classifiers are both PropSets; the paper denotes a
// query {x,y} as xy and the classifier testing the same conjunction as XY.
//
// PropSets are treated as immutable values: operations return new sets and
// never modify their receivers.
type PropSet []PropID

// NewPropSet builds a canonical PropSet from ids (sorting and deduplicating).
func NewPropSet(ids ...PropID) PropSet {
	if len(ids) == 0 {
		return nil
	}
	s := make(PropSet, len(ids))
	copy(s, ids)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	// Deduplicate in place.
	w := 1
	for r := 1; r < len(s); r++ {
		if s[r] != s[w-1] {
			s[w] = s[r]
			w++
		}
	}
	return s[:w]
}

// Len returns the number of properties in the set — the paper's "length" of
// a query or classifier.
func (s PropSet) Len() int { return len(s) }

// Empty reports whether the set has no properties.
func (s PropSet) Empty() bool { return len(s) == 0 }

// Key returns a compact string usable as a map key. Two PropSets have equal
// keys iff they are equal sets.
func (s PropSet) Key() string {
	if len(s) == 0 {
		return ""
	}
	b := make([]byte, 0, len(s)*4)
	return string(s.AppendKey(b))
}

// AppendKey appends the byte encoding underlying Key to dst and returns the
// extended slice. Hot paths use it with a reusable buffer and look maps up
// via m[string(buf)] — a pattern the compiler compiles without allocating —
// so a key string is only ever materialized when a new map entry is stored.
func (s PropSet) AppendKey(dst []byte) []byte {
	for _, id := range s {
		dst = append(dst, byte(id>>24), byte(id>>16), byte(id>>8), byte(id))
	}
	return dst
}

// KeyToPropSet inverts Key. It returns nil if key is not a valid encoding.
func KeyToPropSet(key string) PropSet {
	if len(key)%4 != 0 {
		return nil
	}
	s := make(PropSet, 0, len(key)/4)
	for i := 0; i < len(key); i += 4 {
		id := PropID(key[i])<<24 | PropID(key[i+1])<<16 | PropID(key[i+2])<<8 | PropID(key[i+3])
		s = append(s, id)
	}
	return s
}

// Contains reports whether p is a member of s.
func (s PropSet) Contains(p PropID) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= p })
	return i < len(s) && s[i] == p
}

// SubsetOf reports whether every member of s is in t.
func (s PropSet) SubsetOf(t PropSet) bool {
	if len(s) > len(t) {
		return false
	}
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] == t[j]:
			i++
			j++
		case s[i] > t[j]:
			j++
		default:
			return false
		}
	}
	return i == len(s)
}

// Equal reports whether s and t are the same set.
func (s PropSet) Equal(t PropSet) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether s and t share at least one property.
func (s PropSet) Intersects(t PropSet) bool {
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] == t[j]:
			return true
		case s[i] < t[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// Union returns the set union of s and t.
func (s PropSet) Union(t PropSet) PropSet {
	out := make(PropSet, 0, len(s)+len(t))
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] == t[j]:
			out = append(out, s[i])
			i++
			j++
		case s[i] < t[j]:
			out = append(out, s[i])
			i++
		default:
			out = append(out, t[j])
			j++
		}
	}
	out = append(out, s[i:]...)
	out = append(out, t[j:]...)
	return out
}

// Intersect returns the set intersection of s and t.
func (s PropSet) Intersect(t PropSet) PropSet {
	var out PropSet
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] == t[j]:
			out = append(out, s[i])
			i++
			j++
		case s[i] < t[j]:
			i++
		default:
			j++
		}
	}
	return out
}

// Minus returns the set difference s \ t.
func (s PropSet) Minus(t PropSet) PropSet {
	var out PropSet
	j := 0
	for _, p := range s {
		for j < len(t) && t[j] < p {
			j++
		}
		if j < len(t) && t[j] == p {
			continue
		}
		out = append(out, p)
	}
	return out
}

// SubsetByMask returns the subset of s selected by mask: bit i of mask keeps
// s[i]. It panics if s has more than 64 members.
func (s PropSet) SubsetByMask(mask uint64) PropSet {
	if len(s) > 64 {
		panic("core: PropSet too large for mask subset")
	}
	out := make(PropSet, 0, len(s))
	for i := 0; i < len(s); i++ {
		if mask&(1<<uint(i)) != 0 {
			out = append(out, s[i])
		}
	}
	return out
}

// MaskIn returns the bitmask of s's members relative to superset q: bit i is
// set iff q[i] ∈ s. The second result is false if s is not a subset of q or
// q has more than 64 members.
func (s PropSet) MaskIn(q PropSet) (uint64, bool) {
	if len(q) > 64 || len(s) > len(q) {
		return 0, false
	}
	var mask uint64
	i, j := 0, 0
	for i < len(s) && j < len(q) {
		switch {
		case s[i] == q[j]:
			mask |= 1 << uint(j)
			i++
			j++
		case s[i] > q[j]:
			j++
		default:
			return 0, false
		}
	}
	if i != len(s) {
		return 0, false
	}
	return mask, true
}

// String formats the set as e.g. "{3,7,12}" using raw IDs. For named output
// use Universe.SetNames.
func (s PropSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, id := range s {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(int(id)))
	}
	b.WriteByte('}')
	return b.String()
}
