package core

import (
	"math/bits"
	"testing"
)

// FuzzPropSetAlgebra drives the set operations with arbitrary bit patterns
// and cross-checks them against uint64 bit arithmetic (the reference model
// for sets over a small ID range).
func FuzzPropSetAlgebra(f *testing.F) {
	f.Add(uint64(0b1011), uint64(0b0110))
	f.Add(uint64(0), uint64(0))
	f.Add(^uint64(0), uint64(1))

	fromBits := func(m uint64) PropSet {
		var ids []PropID
		for m != 0 {
			ids = append(ids, PropID(bits.TrailingZeros64(m)))
			m &= m - 1
		}
		return NewPropSet(ids...)
	}
	toBits := func(s PropSet) uint64 {
		var m uint64
		for _, id := range s {
			m |= 1 << uint(id)
		}
		return m
	}

	f.Fuzz(func(t *testing.T, a, b uint64) {
		sa, sb := fromBits(a), fromBits(b)
		if got := toBits(sa.Union(sb)); got != a|b {
			t.Fatalf("Union: %b, want %b", got, a|b)
		}
		if got := toBits(sa.Intersect(sb)); got != a&b {
			t.Fatalf("Intersect: %b, want %b", got, a&b)
		}
		if got := toBits(sa.Minus(sb)); got != a&^b {
			t.Fatalf("Minus: %b, want %b", got, a&^b)
		}
		if got := sa.SubsetOf(sb); got != (a&^b == 0) {
			t.Fatalf("SubsetOf: %v, want %v", got, a&^b == 0)
		}
		if got := sa.Intersects(sb); got != (a&b != 0) {
			t.Fatalf("Intersects: %v, want %v", got, a&b != 0)
		}
		if !fromBits(a).Equal(sa) {
			t.Fatal("fromBits not stable")
		}
		if (sa.Key() == sb.Key()) != (a == b) {
			t.Fatal("Key equality disagrees with set equality")
		}
		if !KeyToPropSet(sa.Key()).Equal(sa) {
			t.Fatal("Key round trip failed")
		}
	})
}

// FuzzAppendKeyCanonical pins the byte-encoded canonical classifier key the
// enumeration hot path builds (AppendKey into a reused buffer) to the string
// key it replaced: identical bytes, lossless round trip, and collision-free —
// keys compare equal iff the sets are equal, including across sets encoded
// into the same reused buffer.
func FuzzAppendKeyCanonical(f *testing.F) {
	f.Add(int32(0), int32(1), int32(2), int32(3))
	f.Add(int32(7), int32(7), int32(7), int32(7))
	f.Add(int32(1<<30), int32(255), int32(256), int32(65536))
	f.Add(int32(0), int32(0), int32(0), int32(0))

	f.Fuzz(func(t *testing.T, p0, p1, p2, p3 int32) {
		if p0 < 0 || p1 < 0 || p2 < 0 || p3 < 0 {
			t.Skip("PropIDs are non-negative")
		}
		sa := NewPropSet(PropID(p0), PropID(p1))
		sb := NewPropSet(PropID(p2), PropID(p3))

		buf := make([]byte, 0, 16)
		ka := string(sa.AppendKey(buf[:0]))
		kb := string(sb.AppendKey(buf[:0])) // same buffer, reused

		if ka != sa.Key() {
			t.Fatalf("AppendKey %q differs from Key %q", ka, sa.Key())
		}
		if kb != sb.Key() {
			t.Fatalf("AppendKey %q differs from Key %q after buffer reuse", kb, sb.Key())
		}
		if (ka == kb) != sa.Equal(sb) {
			t.Fatalf("key collision: %v vs %v encode to %q vs %q", sa, sb, ka, kb)
		}
		if !KeyToPropSet(ka).Equal(sa) {
			t.Fatalf("byte key round trip failed for %v", sa)
		}
	})
}
