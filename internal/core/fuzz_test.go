package core

import (
	"math/bits"
	"testing"
)

// FuzzPropSetAlgebra drives the set operations with arbitrary bit patterns
// and cross-checks them against uint64 bit arithmetic (the reference model
// for sets over a small ID range).
func FuzzPropSetAlgebra(f *testing.F) {
	f.Add(uint64(0b1011), uint64(0b0110))
	f.Add(uint64(0), uint64(0))
	f.Add(^uint64(0), uint64(1))

	fromBits := func(m uint64) PropSet {
		var ids []PropID
		for m != 0 {
			ids = append(ids, PropID(bits.TrailingZeros64(m)))
			m &= m - 1
		}
		return NewPropSet(ids...)
	}
	toBits := func(s PropSet) uint64 {
		var m uint64
		for _, id := range s {
			m |= 1 << uint(id)
		}
		return m
	}

	f.Fuzz(func(t *testing.T, a, b uint64) {
		sa, sb := fromBits(a), fromBits(b)
		if got := toBits(sa.Union(sb)); got != a|b {
			t.Fatalf("Union: %b, want %b", got, a|b)
		}
		if got := toBits(sa.Intersect(sb)); got != a&b {
			t.Fatalf("Intersect: %b, want %b", got, a&b)
		}
		if got := toBits(sa.Minus(sb)); got != a&^b {
			t.Fatalf("Minus: %b, want %b", got, a&^b)
		}
		if got := sa.SubsetOf(sb); got != (a&^b == 0) {
			t.Fatalf("SubsetOf: %v, want %v", got, a&^b == 0)
		}
		if got := sa.Intersects(sb); got != (a&b != 0) {
			t.Fatalf("Intersects: %v, want %v", got, a&b != 0)
		}
		if !fromBits(a).Equal(sa) {
			t.Fatal("fromBits not stable")
		}
		if (sa.Key() == sb.Key()) != (a == b) {
			t.Fatal("Key equality disagrees with set equality")
		}
		if !KeyToPropSet(sa.Key()).Equal(sa) {
			t.Fatal("Key round trip failed")
		}
	})
}
