package textio

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/solver"
)

const exampleJSON = `{
  "queries": [
    ["team:juventus", "color:white", "brand:adidas"],
    ["team:chelsea", "brand:adidas"]
  ],
  "costs": {
    "team:chelsea": 5,
    "brand:adidas": 5,
    "team:juventus": 5,
    "color:white": 1,
    "brand:adidas|team:chelsea": 3,
    "brand:adidas|color:white": 5,
    "brand:adidas|team:juventus": 3,
    "color:white|team:juventus": 4,
    "brand:adidas|color:white|team:juventus": 5
  }
}`

func TestReadBuildSolve(t *testing.T) {
	f, err := Read(strings.NewReader(exampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	_, inst, err := f.Build(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if inst.NumQueries() != 2 || inst.NumClassifiers() != 9 {
		t.Fatalf("parsed instance: %d queries, %d classifiers", inst.NumQueries(), inst.NumClassifiers())
	}
	sol, err := solver.General(inst, solver.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost != 7 {
		t.Errorf("solved file instance at cost %v, want 7", sol.Cost)
	}
	names := SolutionNames(inst, sol)
	if len(names) != len(sol.Selected) {
		t.Error("SolutionNames length mismatch")
	}
}

func TestCostModelFor(t *testing.T) {
	f, err := Read(strings.NewReader(exampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	u := core.NewUniverse()
	cm := f.CostModelFor(u)
	if got := cm.Cost(u.Set("brand:adidas", "team:chelsea")); got != 3 {
		t.Errorf("pair cost = %v, want 3", got)
	}
	if got := cm.Cost(u.Set("color:white")); got != 1 {
		t.Errorf("singleton cost = %v, want 1", got)
	}
	// Unpriced classifiers fall back to the default: +Inf when absent.
	if got := cm.Cost(u.Set("team:chelsea", "color:white")); !math.IsInf(got, 1) {
		t.Errorf("unpriced cost = %v, want +Inf", got)
	}

	// uniform_cost short-circuits the table entirely.
	uc := 2.5
	uf := &File{Queries: [][]string{{"a"}}, UniformCost: &uc}
	if got := uf.CostModelFor(core.NewUniverse()).Cost(core.NewPropSet(0, 1)); got != 2.5 {
		t.Errorf("uniform cost = %v, want 2.5", got)
	}

	// default_cost prices everything the table does not.
	dc := 7.0
	df := &File{Queries: [][]string{{"a"}}, DefaultCost: &dc}
	du := core.NewUniverse()
	if got := df.CostModelFor(du).Cost(du.Set("a")); got != 7 {
		t.Errorf("default cost = %v, want 7", got)
	}
}

func TestRoundTrip(t *testing.T) {
	f, err := Read(strings.NewReader(exampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	_, inst, err := f.Build(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	back := FromInstance(inst)
	var buf bytes.Buffer
	if err := Write(&buf, back); err != nil {
		t.Fatal(err)
	}
	f2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	_, inst2, err := f2.Build(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if inst2.NumQueries() != inst.NumQueries() || inst2.NumClassifiers() != inst.NumClassifiers() {
		t.Error("round trip changed the instance shape")
	}
	s1, _ := solver.General(inst, solver.DefaultOptions())
	s2, _ := solver.General(inst2, solver.DefaultOptions())
	if s1.Cost != s2.Cost {
		t.Errorf("round trip changed solution cost: %v vs %v", s1.Cost, s2.Cost)
	}
}

func TestUniformCost(t *testing.T) {
	one := 1.0
	f := &File{Queries: [][]string{{"a", "b"}}, UniformCost: &one}
	_, inst, err := f.Build(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if inst.NumClassifiers() != 3 {
		t.Errorf("classifiers = %d, want 3", inst.NumClassifiers())
	}
	for id := 0; id < 3; id++ {
		if inst.Cost(core.ClassifierID(id)) != 1 {
			t.Error("uniform cost not applied")
		}
	}
}

func TestDefaultCost(t *testing.T) {
	def := 9.0
	f := &File{
		Queries:     [][]string{{"a", "b"}},
		Costs:       map[string]float64{"a": 2},
		DefaultCost: &def,
	}
	u, inst, err := f.Build(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := u.Lookup("a")
	b, _ := u.Lookup("b")
	idA, _ := inst.ClassifierIDOf(core.NewPropSet(a))
	idB, _ := inst.ClassifierIDOf(core.NewPropSet(b))
	if inst.Cost(idA) != 2 || inst.Cost(idB) != 9 {
		t.Errorf("costs: a=%v b=%v", inst.Cost(idA), inst.Cost(idB))
	}
}

func TestNoDefaultMeansUnavailable(t *testing.T) {
	f := &File{
		Queries: [][]string{{"a", "b"}},
		Costs:   map[string]float64{"a": 2, "b": 3},
	}
	_, inst, err := f.Build(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if inst.NumClassifiers() != 2 {
		t.Errorf("classifiers = %d, want 2 (AB unavailable)", inst.NumClassifiers())
	}
}

func TestValidation(t *testing.T) {
	cases := []string{
		`{}`,
		`{"queries": []}`,
		`{"queries": [[]]}`,
		`{"queries": [[""]]}`,
		`{"queries": [["a|b"]]}`,
		`{"queries": [["a"]], "costs": {"a": -1}}`,
		`{"queries": [["a"]], "uniform_cost": -2}`,
		`{"queries": [["a"]], "default_cost": -2}`,
		`{"queries": [["a"]], "unknown_field": 1}`,
		`not json`,
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("Read(%q) should fail", c)
		}
	}
}

func TestCostKeyCanonical(t *testing.T) {
	if CostKey([]string{"b", "a"}) != "a|b" {
		t.Error("CostKey must sort names")
	}
	if CostKey([]string{"x"}) != "x" {
		t.Error("singleton key")
	}
}

func TestWriteRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, &File{}); err == nil {
		t.Error("Write must validate")
	}
	bad := math.Inf(1)
	_ = bad
}

func TestWeightsValidation(t *testing.T) {
	one := 1.0
	bad := []string{
		`{"queries": [["a"]], "uniform_cost": 1, "weights": [1, 2]}`,
		`{"queries": [["a"]], "uniform_cost": 1, "weights": [-1]}`,
	}
	for _, c := range bad {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("Read(%q) should fail", c)
		}
	}
	good := `{"queries": [["a"], ["a","b"]], "uniform_cost": 1, "weights": [2, 3]}`
	f, err := Read(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	w := f.QueryWeights()
	if len(w) != 2 || w[0] != 2 || w[1] != 3 {
		t.Errorf("QueryWeights = %v", w)
	}
	_ = one
}

func TestQueryWeightsMergeDuplicates(t *testing.T) {
	f := &File{
		Queries: [][]string{{"a", "b"}, {"b", "a"}, {"c"}},
		Weights: []float64{2, 3, 5},
	}
	w := f.QueryWeights()
	// {a,b} appears twice (different order): weights merge to 5.
	if len(w) != 2 || w[0] != 5 || w[1] != 5 {
		t.Errorf("QueryWeights = %v, want [5 5]", w)
	}
	// Without weights: uniform 1, duplicates summed.
	f2 := &File{Queries: [][]string{{"a"}, {"a"}, {"b"}}}
	w2 := f2.QueryWeights()
	if len(w2) != 2 || w2[0] != 2 || w2[1] != 1 {
		t.Errorf("QueryWeights = %v, want [2 1]", w2)
	}
}
