package textio

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
)

// FuzzRead checks that arbitrary input never panics the parser, and that
// anything it accepts survives a full round trip (build → serialize → parse
// → build) with the instance shape preserved.
func FuzzRead(f *testing.F) {
	f.Add(exampleJSON)
	f.Add(`{"queries": [["a"]], "uniform_cost": 1}`)
	f.Add(`{"queries": [["a","b"],["b","c"]], "costs": {"a":1,"b":2,"c":3,"a|b":2,"b|c":2}}`)
	f.Add(`{"queries": []}`)
	f.Add(`{`)
	f.Add(``)
	f.Add(`{"queries": [["a|b"]]}`)

	f.Fuzz(func(t *testing.T, data string) {
		file, err := Read(strings.NewReader(data))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		_, inst, err := file.Build(core.Options{})
		if err != nil {
			return // accepted file may still be unbuildable (e.g. huge query)
		}
		var buf bytes.Buffer
		back := FromInstance(inst)
		if err := Write(&buf, back); err != nil {
			t.Fatalf("Write failed on round trip: %v", err)
		}
		file2, err := Read(&buf)
		if err != nil {
			t.Fatalf("serialized file does not parse: %v", err)
		}
		_, inst2, err := file2.Build(core.Options{})
		if err != nil {
			t.Fatalf("round-tripped file does not build: %v", err)
		}
		if inst2.NumQueries() != inst.NumQueries() || inst2.NumClassifiers() != inst.NumClassifiers() {
			t.Fatalf("round trip changed shape: %d/%d → %d/%d",
				inst.NumQueries(), inst.NumClassifiers(), inst2.NumQueries(), inst2.NumClassifiers())
		}
	})
}
