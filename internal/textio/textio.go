// Package textio reads and writes MC³ instances as JSON files, the exchange
// format of the command-line tools: queries are lists of property names, and
// classifier costs are keyed by the sorted property names joined with "|".
// Classifiers without a listed cost get the default cost (omit the default
// to make unlisted classifiers unavailable, mirroring the paper's treatment
// of infinite weights).
package textio

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"repro/internal/core"
)

// KeySep joins property names in cost keys.
const KeySep = "|"

// File is the JSON representation of an MC³ instance.
type File struct {
	// Queries lists the query load; each query is a list of property names.
	Queries [][]string `json:"queries"`
	// Costs prices classifiers, keyed by sorted property names joined with
	// KeySep.
	Costs map[string]float64 `json:"costs,omitempty"`
	// UniformCost, when set, prices every classifier identically and
	// overrides Costs/DefaultCost.
	UniformCost *float64 `json:"uniform_cost,omitempty"`
	// DefaultCost prices classifiers missing from Costs. Absent means
	// unlisted classifiers are unavailable.
	DefaultCost *float64 `json:"default_cost,omitempty"`
	// Weights optionally assigns an importance weight per query (parallel
	// to Queries), used by the budgeted partial-cover variant. Absent
	// means uniform weight 1.
	Weights []float64 `json:"weights,omitempty"`
}

// CostKey builds the canonical cost key for a set of property names.
func CostKey(names []string) string {
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	return strings.Join(sorted, KeySep)
}

// Read parses a File from JSON.
func Read(r io.Reader) (*File, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var f File
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("textio: %w", err)
	}
	if err := f.validate(); err != nil {
		return nil, err
	}
	return &f, nil
}

// Write serializes a File as indented JSON.
func Write(w io.Writer, f *File) error {
	if err := f.validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

func (f *File) validate() error {
	if len(f.Queries) == 0 {
		return errors.New("textio: file has no queries")
	}
	for i, q := range f.Queries {
		if len(q) == 0 {
			return fmt.Errorf("textio: query %d is empty", i)
		}
		for _, name := range q {
			if name == "" {
				return fmt.Errorf("textio: query %d has an empty property name", i)
			}
			if strings.Contains(name, KeySep) {
				return fmt.Errorf("textio: property name %q contains the reserved separator %q", name, KeySep)
			}
		}
	}
	for k, c := range f.Costs {
		if c < 0 || math.IsNaN(c) {
			return fmt.Errorf("textio: cost %v for %q is invalid", c, k)
		}
	}
	if f.UniformCost != nil && (*f.UniformCost < 0 || math.IsNaN(*f.UniformCost)) {
		return fmt.Errorf("textio: uniform cost %v is invalid", *f.UniformCost)
	}
	if f.DefaultCost != nil && (*f.DefaultCost < 0 || math.IsNaN(*f.DefaultCost)) {
		return fmt.Errorf("textio: default cost %v is invalid", *f.DefaultCost)
	}
	if f.Weights != nil {
		if len(f.Weights) != len(f.Queries) {
			return fmt.Errorf("textio: %d weights for %d queries", len(f.Weights), len(f.Queries))
		}
		for i, w := range f.Weights {
			if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
				return fmt.Errorf("textio: weight %v for query %d is invalid", w, i)
			}
		}
	}
	return nil
}

// QueryWeights returns the per-query weights aligned with the instance
// built by Build: duplicates of a query merge by summing their weights, in
// first-occurrence order; absent Weights means uniform 1.
func (f *File) QueryWeights() []float64 {
	type slot struct {
		idx int
		w   float64
	}
	order := make(map[string]*slot, len(f.Queries))
	var out []float64
	u := core.NewUniverse()
	for i, q := range f.Queries {
		key := u.Set(q...).Key()
		w := 1.0
		if f.Weights != nil {
			w = f.Weights[i]
		}
		if s, ok := order[key]; ok {
			out[s.idx] += w
			continue
		}
		order[key] = &slot{idx: len(out)}
		out = append(out, w)
	}
	return out
}

// Build materializes the file as an MC³ instance.
func (f *File) Build(opts core.Options) (*core.Universe, *core.Instance, error) {
	if err := f.validate(); err != nil {
		return nil, nil, err
	}
	u := core.NewUniverse()
	queries := make([]core.PropSet, len(f.Queries))
	for i, q := range f.Queries {
		queries[i] = u.Set(q...)
	}

	inst, err := core.NewInstance(u, queries, f.CostModelFor(u), opts)
	if err != nil {
		return nil, nil, err
	}
	return u, inst, nil
}

// CostModelFor builds the file's cost model bound to u, interning every
// priced classifier's properties. Cost tables key on property IDs, so a
// model must be built against the universe it will be evaluated in —
// mc3serve's incremental sessions use this to price classifiers in a
// session-owned universe.
func (f *File) CostModelFor(u *core.Universe) core.CostModel {
	if f.UniformCost != nil {
		return core.UniformCost(*f.UniformCost)
	}
	def := math.Inf(1)
	if f.DefaultCost != nil {
		def = *f.DefaultCost
	}
	table := core.NewCostTable(def)
	// Intern cost keys in sorted order, not map order: interning assigns
	// property IDs, and two processes building a model from the same file
	// must end with identical universes for their solves to tie-break
	// identically (the cluster differential depends on this).
	keys := make([]string, 0, len(f.Costs))
	for key := range f.Costs {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		table.Set(u.Set(strings.Split(key, KeySep)...), f.Costs[key])
	}
	return table
}

// FromInstance captures an instance back into the file format, with every
// classifier of C_Q priced explicitly.
func FromInstance(inst *core.Instance) *File {
	f := &File{Costs: make(map[string]float64, inst.NumClassifiers())}
	for qi := 0; qi < inst.NumQueries(); qi++ {
		f.Queries = append(f.Queries, inst.Universe.SetNames(inst.Query(qi)))
	}
	for id := 0; id < inst.NumClassifiers(); id++ {
		cid := core.ClassifierID(id)
		f.Costs[CostKey(inst.Universe.SetNames(inst.Classifier(cid)))] = inst.Cost(cid)
	}
	return f
}

// SolutionNames renders a solution as sorted lists of property names, one
// per selected classifier.
func SolutionNames(inst *core.Instance, sol *core.Solution) [][]string {
	out := make([][]string, 0, len(sol.Selected))
	for _, id := range sol.Selected {
		out = append(out, inst.Universe.SetNames(inst.Classifier(id)))
	}
	return out
}
