package mc3_test

// Runnable godoc examples for the public API.

import (
	"fmt"
	"math"
	"strings"

	mc3 "repro"
)

// ExampleSolve reproduces the paper's Example 1.1: two soccer-shirt queries
// whose optimal classifier set is {AC, AJ, W} at cost 7N.
func ExampleSolve() {
	u := mc3.NewUniverse()
	queries := []mc3.PropSet{
		u.Set("team:juventus", "color:white", "brand:adidas"),
		u.Set("team:chelsea", "brand:adidas"),
	}
	costs := mc3.NewCostTable(math.Inf(1))
	set := func(c float64, props ...string) { costs.Set(u.Set(props...), c) }
	set(5, "team:chelsea")
	set(5, "brand:adidas")
	set(5, "team:juventus")
	set(1, "color:white")
	set(3, "brand:adidas", "team:chelsea")
	set(5, "brand:adidas", "color:white")
	set(3, "brand:adidas", "team:juventus")
	set(4, "team:juventus", "color:white")
	set(5, "team:juventus", "color:white", "brand:adidas")

	inst, err := mc3.NewInstance(u, queries, costs, mc3.InstanceOptions{})
	if err != nil {
		fmt.Println(err)
		return
	}
	sol, err := mc3.Solve(inst, mc3.DefaultSolveOptions())
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("cost %g with %d classifiers\n", sol.Cost, len(sol.Selected))
	// Output: cost 7 with 3 classifiers
}

// ExampleSolveKTwo shows the exact polynomial algorithm on a short-query
// load (every query tests at most two properties).
func ExampleSolveKTwo() {
	u := mc3.NewUniverse()
	queries := []mc3.PropSet{u.Set("a", "b"), u.Set("b", "c")}
	costs := mc3.NewCostTable(math.Inf(1))
	costs.Set(u.Set("a"), 3)
	costs.Set(u.Set("b"), 3)
	costs.Set(u.Set("c"), 3)
	costs.Set(u.Set("a", "b"), 4)
	costs.Set(u.Set("b", "c"), 4)

	inst, _ := mc3.NewInstance(u, queries, costs, mc3.InstanceOptions{})
	sol, _ := mc3.SolveKTwo(inst, mc3.DefaultSolveOptions())
	fmt.Printf("optimal cost %g\n", sol.Cost)
	// Output: optimal cost 8
}

// ExampleMergeAttributes demonstrates the multi-valued transformation of
// Section 5.3: value-properties merge into attribute-properties.
func ExampleMergeAttributes() {
	u := mc3.NewUniverse()
	queries := []mc3.PropSet{
		u.Set("team:juventus", "color:white", "brand:adidas"),
		u.Set("team:chelsea", "brand:adidas"),
	}
	mu, merged := mc3.MergeAttributes(u, queries, mc3.AttrPrefix(":"))
	fmt.Printf("%d attributes; query lengths %d and %d\n",
		mu.Size(), merged[0].Len(), merged[1].Len())
	// Output: 3 attributes; query lengths 3 and 2
}

// ExampleParseQueryLog ingests a curated plain-text query log.
func ExampleParseQueryLog() {
	log := `
# curated from user sessions
team:juventus, color:white
team:chelsea, brand:adidas
`
	u := mc3.NewUniverse()
	queries, err := mc3.ParseQueryLog(strings.NewReader(log), u)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%d queries over %d properties\n", len(queries), u.Size())
	// Output: 2 queries over 4 properties
}

// ExampleSolveBudgeted shows the future-work budgeted variant: with half
// the budget, the heavier query wins.
func ExampleSolveBudgeted() {
	u := mc3.NewUniverse()
	queries := []mc3.PropSet{u.Set("x", "y"), u.Set("p", "q")}
	costs := mc3.NewCostTable(math.Inf(1))
	costs.Set(u.Set("x", "y"), 5)
	costs.Set(u.Set("p", "q"), 5)

	inst, _ := mc3.NewInstance(u, queries, costs, mc3.InstanceOptions{})
	sol, _ := mc3.SolveBudgeted(inst, []float64{10, 1}, 5, mc3.DefaultSolveOptions())
	fmt.Printf("covered weight %g at cost %g\n", sol.CoveredWeight, sol.Cost)
	// Output: covered weight 10 at cost 5
}

// ExamplePreprocess shows Algorithm 1 resolving part of an instance before
// any search.
func ExamplePreprocess() {
	u := mc3.NewUniverse()
	queries := []mc3.PropSet{u.Set("x"), u.Set("x", "y")}
	costs := mc3.NewCostTable(math.Inf(1))
	costs.Set(u.Set("x"), 5)
	costs.Set(u.Set("y"), 3)
	costs.Set(u.Set("x", "y"), 4)

	inst, _ := mc3.NewInstance(u, queries, costs, mc3.InstanceOptions{})
	r, _ := mc3.Preprocess(inst, mc3.PrepFull)
	fmt.Printf("selected %d classifiers, %d queries already covered\n",
		len(r.Selected), r.Stats.QueriesCovered)
	// Output: selected 2 classifiers, 2 queries already covered
}
