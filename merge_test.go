package mc3

import (
	"testing"
)

func TestAttrPrefixEdgeCases(t *testing.T) {
	attrOf := AttrPrefix(":")
	cases := []struct{ name, want string }{
		{"color:white", "color"},
		{"team:juventus", "team"},
		{"brand:adidas:retro", "brand"}, // first separator wins
		{"plain", "plain"},              // no separator: name maps to itself
		{":leading", ""},
	}
	for _, tc := range cases {
		if got := attrOf(tc.name); got != tc.want {
			t.Errorf("AttrPrefix(\":\")(%q) = %q, want %q", tc.name, got, tc.want)
		}
	}
}

func TestMergeAttributesCollisions(t *testing.T) {
	u := NewUniverse()
	queries := []PropSet{
		// Two properties of the same attribute in one query: they must
		// collapse to a single attribute-level property.
		u.Set("color:white", "color:black", "brand:adidas"),
		u.Set("team:chelsea", "brand:adidas"),
		// A name without the separator passes through unchanged.
		u.Set("vintage"),
	}
	mu, merged := MergeAttributes(u, queries, AttrPrefix(":"))

	if len(merged) != len(queries) {
		t.Fatalf("merged %d queries, want %d", len(merged), len(queries))
	}
	if got := merged[0]; got.Len() != 2 {
		t.Errorf("query 0 merged to %d attributes, want 2 (color, brand): %v", got.Len(), mu.SetNames(got))
	}
	if !merged[0].Equal(mu.Set("color", "brand")) {
		t.Errorf("query 0 = %v, want {brand, color}", mu.SetNames(merged[0]))
	}
	if !merged[1].Equal(mu.Set("team", "brand")) {
		t.Errorf("query 1 = %v, want {brand, team}", mu.SetNames(merged[1]))
	}
	if !merged[2].Equal(mu.Set("vintage")) {
		t.Errorf("query 2 = %v, want {vintage}", mu.SetNames(merged[2]))
	}
	// The attribute universe holds only the four attribute names.
	if mu.Size() != 4 {
		t.Errorf("attribute universe size = %d, want 4 (brand, color, team, vintage)", mu.Size())
	}
	// The original universe is untouched.
	if u.Size() != 5 {
		t.Errorf("original universe size changed: %d, want 5", u.Size())
	}
}

func TestMergeAttributesSolvesAsOrdinaryInstance(t *testing.T) {
	// Section 5.3: after the pure multi-valued transformation the merged
	// load is an ordinary MC³ instance over attributes. Every query shrinks
	// to length ≤ 2, so the k=2 algorithm applies.
	u := NewUniverse()
	queries := []PropSet{
		u.Set("color:white", "brand:adidas"),
		u.Set("color:black", "brand:nike"),
		u.Set("color:red", "team:milan"),
	}
	mu, merged := MergeAttributes(u, queries, AttrPrefix(":"))
	costs := NewCostTable(10)
	costs.Set(mu.Set("color"), 2)
	costs.Set(mu.Set("brand"), 3)
	costs.Set(mu.Set("team"), 4)
	inst, err := NewInstance(mu, merged, costs, InstanceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if inst.NumQueries() != 2 {
		t.Fatalf("instance queries = %d, want 2 (the two {brand,color} queries merge)", inst.NumQueries())
	}
	sol, err := Solve(inst, DefaultSolveOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Verify(sol); err != nil {
		t.Fatal(err)
	}
	// Optimum: attribute classifiers color (2) + brand (3) + team (4).
	if sol.Cost != 9 {
		t.Errorf("merged solve cost = %v, want 9", sol.Cost)
	}
}
