// Short-First: the "almost k = 2" strategy of the paper's Sections 4 and 6
// on a fashion-category query load, where ~96% of queries test at most two
// properties. The exact polynomial algorithm covers the short queries first;
// the general approximation then covers the residual long queries with the
// already-trained classifiers priced at zero.
//
// Run with: go run ./examples/shortfirst
package main

import (
	"fmt"
	"log"

	mc3 "repro"
	"repro/internal/workload"
)

func main() {
	fashion := workload.Private(1).CategorySlice(workload.CategoryFashion)
	inst, err := fashion.Instance()
	if err != nil {
		log.Fatal(err)
	}

	short, long := 0, 0
	for i := 0; i < inst.NumQueries(); i++ {
		if inst.Query(i).Len() <= 2 {
			short++
		} else {
			long++
		}
	}
	fmt.Printf("fashion load: %d queries (%d short ≤2, %d long) over %d properties\n",
		inst.NumQueries(), short, long, inst.Universe.Size())

	run := func(name string, fn mc3.SolverFunc) float64 {
		sol, err := fn(inst, mc3.DefaultSolveOptions())
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		if err := inst.Verify(sol); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("  %-22s cost %6.0f  (%d classifiers)\n", name, sol.Cost, len(sol.Selected))
		return sol.Cost
	}

	fmt.Println("covering the load:")
	sf := run("Short-First", mc3.SolveShortFirst)
	gen := run("MC3[G] (Algorithm 3)", mc3.SolveGeneral)
	run("Local-Greedy", mc3.LocalGreedy)
	run("Query-Oriented", mc3.QueryOriented)
	run("Property-Oriented", mc3.PropertyOriented)

	switch {
	case sf < gen:
		fmt.Printf("\nShort-First wins by %.1f%% — exact coverage of the dominant short slice pays off,\n"+
			"matching the paper's finding on its fashion sub-dataset.\n", (gen/sf-1)*100)
	case sf == gen:
		fmt.Println("\nShort-First ties the general algorithm on this load.")
	default:
		fmt.Printf("\nThe general algorithm edges out Short-First by %.1f%% on this draw;\n"+
			"on short-query-dominated loads the two are typically within a percent.\n", (sf/gen-1)*100)
	}
}
