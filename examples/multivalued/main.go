// Multi-valued classifiers (Section 5.3): instead of one binary classifier
// per property value ("color:white"? "color:blue"?), a single multi-valued
// classifier can decide an attribute's value for every item, acting as all
// of its binary value-classifiers at once.
//
// This example shows both treatments the paper describes:
//  1. mixed mode — multi-valued candidates compete with binary classifiers
//     inside the extended Weighted Set Cover reduction;
//  2. pure mode — properties merge into attributes (MergeAttributes),
//     yielding a smaller instance that adheres to exactly the same model.
//
// Run with: go run ./examples/multivalued
package main

import (
	"fmt"
	"log"
	"math"

	mc3 "repro"
)

func main() {
	u := mc3.NewUniverse()

	// A small apparel load: colors appear across many queries.
	queries := []mc3.PropSet{
		u.Set("type:shirt", "color:white"),
		u.Set("type:dress", "color:blue"),
		u.Set("type:jacket", "color:red"),
		u.Set("type:shirt", "color:red", "brand:adidas"),
		u.Set("type:dress", "color:white", "brand:zara"),
	}

	costs := mc3.NewCostTable(math.Inf(1))
	set := func(c float64, props ...string) { costs.Set(u.Set(props...), c) }
	// Binary classifiers: each color detector is expensive on its own.
	for _, ty := range []string{"type:shirt", "type:dress", "type:jacket"} {
		set(3, ty)
	}
	for _, col := range []string{"color:white", "color:blue", "color:red"} {
		set(8, col)
	}
	set(4, "brand:adidas")
	set(4, "brand:zara")
	// A few conjunctions.
	set(9, "type:shirt", "color:white")
	set(10, "type:dress", "color:blue")
	set(10, "type:jacket", "color:red")
	set(7, "color:red", "brand:adidas")
	set(7, "color:white", "brand:zara")

	inst, err := mc3.NewInstance(u, queries, costs, mc3.InstanceOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Binary-only solution.
	binary, err := mc3.SolveGeneral(inst, mc3.DefaultSolveOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("binary classifiers only: cost %g\n", binary.Cost)

	// Mixed mode: one multi-valued "color" classifier decides all three
	// color properties for 14 — cheaper than three binary color models.
	white, _ := u.Lookup("color:white")
	blue, _ := u.Lookup("color:blue")
	red, _ := u.Lookup("color:red")
	multis := []mc3.MultiValued{{
		Name:       "color",
		Properties: mc3.NewPropSet(white, blue, red),
		Cost:       14,
	}}
	mixed, err := mc3.SolveWithMultiValued(inst, multis, mc3.DefaultSolveOptions())
	if err != nil {
		log.Fatal(err)
	}
	if err := mc3.VerifyMultiSolution(inst, multis, mixed); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with a multi-valued color classifier: cost %g", mixed.Cost)
	for _, mi := range mixed.MultiValued {
		fmt.Printf("  [selected: %s]", multis[mi].Name)
	}
	fmt.Println()

	// Pure mode: merge value-properties into attributes and re-model.
	mu, merged := mc3.MergeAttributes(u, queries, mc3.AttrPrefix(":"))
	attrCosts := mc3.NewCostTable(math.Inf(1))
	ty, _ := mu.Lookup("type")
	col, _ := mu.Lookup("color")
	br, _ := mu.Lookup("brand")
	attrCosts.Set(mc3.NewPropSet(ty), 9) // multi-valued "type" model
	attrCosts.Set(mc3.NewPropSet(col), 14)
	attrCosts.Set(mc3.NewPropSet(br), 8)
	attrCosts.Set(mc3.NewPropSet(ty, col), 20)
	mergedInst, err := mc3.NewInstance(mu, merged, attrCosts, mc3.InstanceOptions{})
	if err != nil {
		log.Fatal(err)
	}
	pure, err := mc3.Solve(mergedInst, mc3.DefaultSolveOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pure multi-valued model (attributes %v): cost %g\n", mu.Names(), pure.Cost)
	for _, id := range pure.Selected {
		fmt.Printf("  train multi-valued classifier %v (cost %g)\n",
			mu.SetNames(mergedInst.Classifier(id)), mergedInst.Cost(id))
	}
}
