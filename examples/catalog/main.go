// Catalog: the paper's motivating scenario end to end (Section 1).
//
// A marketplace catalog has items whose attributes are only partially
// filled in by sellers — a shirt's color may live in its photo. Conjunctive
// search queries over the structured fields therefore miss relevant items.
// This example:
//
//  1. generates a catalog with hidden attribute values and measures the
//     incomplete recall of a real query load;
//  2. derives classifier training costs from the catalog itself (labeling
//     effort: rare conjunctions need more expert labels);
//  3. selects the cheapest classifier set covering the load with MC³;
//  4. "trains" those classifiers (annotating true positives, per the
//     paper's footnote 2), completing the catalog offline;
//  5. re-runs the query load: every query reaches perfect recall, at a
//     fraction of the naive baselines' labeling budget.
//
// Run with: go run ./examples/catalog
package main

import (
	"fmt"
	"log"

	mc3 "repro"
	"repro/internal/catalog"
)

func main() {
	attrs := []catalog.Attribute{
		{Name: "type", Values: []string{"shirt", "dress", "jacket", "jeans", "hoodie"}, VisibleRate: 0.95},
		{Name: "color", Values: []string{"white", "black", "red", "blue", "green", "navy"}, VisibleRate: 0.35},
		{Name: "brand", Values: []string{"adidas", "nike", "puma", "umbro", "zara"}, VisibleRate: 0.55},
		{Name: "material", Values: []string{"cotton", "polyester", "denim", "wool"}, VisibleRate: 0.25},
	}
	cat, err := catalog.GenerateCorrelated(5000, attrs, 40, 0.85, 42)
	if err != nil {
		log.Fatal(err)
	}
	rawQueries, err := cat.SampleQueries(60, 1, 3, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("catalog: %d items, %d attributes; query load: %d queries\n",
		len(cat.Items), len(attrs), len(rawQueries))
	fmt.Printf("search recall before training any classifier: %.3f\n\n", cat.MacroRecall(rawQueries))

	// Derive the MC³ instance: costs = labeling effort on this catalog.
	u := mc3.NewUniverse()
	queries := make([]mc3.PropSet, len(rawQueries))
	for i, q := range rawQueries {
		queries[i] = u.Set(q...)
	}
	cm, err := catalog.NewLabelingCostModel(cat, u, 30, 2, 50)
	if err != nil {
		log.Fatal(err)
	}
	inst, err := mc3.NewInstance(u, queries, cm, mc3.InstanceOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MC3 instance: %d candidate classifiers priced by labeling effort\n", inst.NumClassifiers())

	type plan struct {
		name string
		fn   mc3.SolverFunc
	}
	for _, p := range []plan{
		{"MC3 (Algorithm 3)", mc3.SolveGeneral},
		{"Property-Oriented", mc3.PropertyOriented},
		{"Query-Oriented", mc3.QueryOriented},
	} {
		sol, err := p.fn(inst, mc3.DefaultSolveOptions())
		if err != nil {
			fmt.Printf("  %-18s not applicable: %v\n", p.name, err)
			continue
		}
		cat.ResetAnnotations()
		for _, id := range sol.Selected {
			cat.ApplyClassifier(u.SetNames(inst.Classifier(id)))
		}
		recall := cat.MacroRecall(rawQueries)
		fmt.Printf("  %-18s labeling budget %6.0f → %d classifiers trained, recall %.3f\n",
			p.name, sol.Cost, len(sol.Selected), recall)
	}

	// Show a concrete query before/after for colour.
	cat.ResetAnnotations()
	q := []string{catalog.PropertyName("color", "white"), catalog.PropertyName("brand", "adidas")}
	before := cat.Evaluate(q)
	sol, err := mc3.SolveGeneral(inst, mc3.DefaultSolveOptions())
	if err != nil {
		log.Fatal(err)
	}
	for _, id := range sol.Selected {
		cat.ApplyClassifier(u.SetNames(inst.Classifier(id)))
	}
	after := cat.Evaluate(q)
	fmt.Printf("\nexample query %v: %d relevant items; retrieved %d before vs %d after training\n",
		q, after.Ideal, before.Retrieved, after.Retrieved)
}
