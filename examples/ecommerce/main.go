// E-commerce workload: a marketplace-scale query load (the simulated
// "Private" dataset of the paper's experimental study — 10,000 queries over
// Electronics, Home & Garden, and Fashion, with classifier costs in [1, 63])
// solved with every algorithm the paper compares, plus the instance analysis
// that drives its approximation guarantees.
//
// Run with: go run ./examples/ecommerce
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	mc3 "repro"
	"repro/internal/workload"
)

func main() {
	dataset := workload.Private(1)
	inst, err := dataset.Instance()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("catalog query load: %d queries over %d properties, %d candidate classifiers\n",
		inst.NumQueries(), inst.Universe.Size(), inst.NumClassifiers())

	params := mc3.Analyze(inst)
	guarantee := math.Min(
		math.Log(float64(params.Incidence))+math.Log(float64(params.MaxQueryLen-1))+1,
		math.Pow(2, float64(params.MaxQueryLen-1)),
	)
	fmt.Printf("parameters: k=%d incidence=%d frequency=%d degree=%d\n",
		params.MaxQueryLen, params.Incidence, params.Frequency, params.Degree)
	fmt.Printf("Algorithm 3 guarantee (Theorem 5.3): %.2f × optimal\n\n", guarantee)

	algos := []struct {
		name string
		fn   mc3.SolverFunc
	}{
		{"MC3[G] (Algorithm 3)", mc3.SolveGeneral},
		{"Short-First", mc3.SolveShortFirst},
		{"Local-Greedy", mc3.LocalGreedy},
		{"Property-Oriented", mc3.PropertyOriented},
		{"Query-Oriented", mc3.QueryOriented},
	}

	var best float64 = math.Inf(1)
	type row struct {
		name    string
		cost    float64
		n       int
		elapsed time.Duration
	}
	var rows []row
	for _, a := range algos {
		start := time.Now()
		sol, err := a.fn(inst, mc3.DefaultSolveOptions())
		if err != nil {
			log.Fatalf("%s: %v", a.name, err)
		}
		if err := inst.Verify(sol); err != nil {
			log.Fatalf("%s produced an invalid plan: %v", a.name, err)
		}
		rows = append(rows, row{a.name, sol.Cost, len(sol.Selected), time.Since(start)})
		if sol.Cost < best {
			best = sol.Cost
		}
	}

	fmt.Printf("%-22s %12s %8s %10s %10s\n", "algorithm", "cost", "#cls", "vs best", "time")
	for _, r := range rows {
		fmt.Printf("%-22s %12.0f %8d %+9.1f%% %10s\n",
			r.name, r.cost, r.n, (r.cost/best-1)*100, r.elapsed.Round(time.Millisecond))
	}

	// Preprocessing report: what Algorithm 1 resolved before any search.
	prepRes, err := mc3.Preprocess(inst, mc3.PrepFull)
	if err != nil {
		log.Fatal(err)
	}
	s := prepRes.Stats
	fmt.Printf("\npreprocessing: %d classifiers pruned, %d forced selections, %d/%d queries resolved, %d independent sub-problems\n",
		s.Step3Removed+s.Step4Removed,
		s.SingletonSelected+s.ZeroCostSelected+s.Step3Selected+s.Step4Selected,
		s.QueriesCovered, inst.NumQueries(), s.Components)
}
