// Hardness: the paper's Theorem 5.1 lower-bound construction, executed.
//
// Section 5.1 proves MC³ NP-hard to approximate below min{(k−2), ln I} via
// an approximation-preserving reduction from Set Cover: every element
// becomes a query over "its sets" plus a shared marker property e, set–set
// pair classifiers are free, and {e, set} classifiers cost 1 — so covering
// the query load costs exactly as much as covering the universe with sets.
//
// This example builds that adversarial instance from a concrete Set Cover
// problem, solves it with both the exact oracle and Algorithm 3, and maps
// the solutions back to set covers.
//
// Run with: go run ./examples/hardness
package main

import (
	"fmt"
	"log"

	mc3 "repro"
	"repro/internal/hardness"
)

func main() {
	// A Set Cover instance: 6 elements, 5 sets, optimum 2 ({0,1,2} via s0
	// and {3,4,5} via s1).
	sc := &hardness.SetCover{
		NumElements: 6,
		Sets: [][]int{
			{0, 1, 2},
			{3, 4, 5},
			{0, 3},
			{1, 4},
			{2, 5},
		},
	}
	fmt.Printf("set cover: %d elements, %d sets\n", sc.NumElements, len(sc.Sets))

	r, err := hardness.BuildTheorem51(sc)
	if err != nil {
		log.Fatal(err)
	}
	params := mc3.Analyze(r.Inst)
	fmt.Printf("reduced MC3 instance: %d queries, %d classifiers, k=%d (=f+1), I=%d (=Δ)\n",
		r.Inst.NumQueries(), r.Inst.NumClassifiers(), params.MaxQueryLen, params.Incidence)

	// Exact optimum on the reduced instance equals the Set Cover optimum.
	exact, err := mc3.SolveExact(r.Inst, mc3.DefaultSolveOptions())
	if err != nil {
		log.Fatal(err)
	}
	chosen, err := r.ToSetCover(exact)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexact MC3 optimum: cost %g → set cover of size %d: %v\n",
		exact.Cost, len(chosen), chosen)

	// Algorithm 3 on the hard instance family: its cost upper-bounds the
	// mapped cover size (approximation preservation).
	approx, err := mc3.SolveGeneral(r.Inst, mc3.DefaultSolveOptions())
	if err != nil {
		log.Fatal(err)
	}
	approxCover, err := r.ToSetCover(approx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Algorithm 3: cost %g → set cover of size %d (ratio %.2f vs optimum)\n",
		approx.Cost, len(approxCover), approx.Cost/exact.Cost)

	// Round trip: mapping a cover back yields an MC3 solution of equal cost.
	back, err := r.FromSetCover(chosen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("round trip: cover of size %d → MC3 solution of cost %g\n", len(chosen), back.Cost)

	// Theorem 5.2's single-query reduction, for contrast.
	r2, err := hardness.BuildTheorem52(sc)
	if err != nil {
		log.Fatal(err)
	}
	sol2, err := mc3.SolveExact(r2.Inst, mc3.DefaultSolveOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTheorem 5.2 single-query instance (k=%d): optimum %g — hardness lives in k alone\n",
		r2.Inst.MaxQueryLen(), sol2.Cost)
}
