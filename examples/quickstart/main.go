// Quickstart: the soccer-shirts example of the paper's Section 1
// (Example 1.1), end to end through the public API.
//
// Two search queries — "white adidas juventus shirt" and "adidas chelsea
// shirt" — must be answerable by classifiers. Every classifier over a subset
// of a query's properties has a training-cost estimate; the solver picks the
// cheapest set of classifiers that covers both queries.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	mc3 "repro"
)

func main() {
	u := mc3.NewUniverse()

	// The paper's pipeline starts from free text: the e-commerce
	// application translates user queries into property conjunctions.
	vocab := mc3.NewVocabulary(u)
	vocab.Register("team:juventus", "juventus")
	vocab.Register("team:chelsea", "chelsea")
	vocab.Register("color:white", "white")
	vocab.Register("brand:adidas", "adidas")

	freeText := []string{
		"white adidas juventus shirt",
		"adidas chelsea shirt",
	}
	queries, _ := vocab.ParseLoad(freeText)
	for i, q := range queries {
		sql, err := mc3.QuerySQL(u, "Shirts", q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%q\n  translates to: %s\n", freeText[i], sql)
	}
	fmt.Println()

	// Classifier training-cost estimates (in cost units N). Classifiers
	// not listed are unavailable — the table's default is +Inf.
	costs := mc3.NewCostTable(math.Inf(1))
	set := func(cost float64, props ...string) { costs.Set(u.Set(props...), cost) }
	set(5, "team:chelsea")
	set(5, "brand:adidas")
	set(5, "team:juventus")
	set(1, "color:white")
	set(3, "brand:adidas", "team:chelsea")
	set(5, "brand:adidas", "color:white")
	set(3, "brand:adidas", "team:juventus")
	set(4, "team:juventus", "color:white")
	set(5, "team:juventus", "color:white", "brand:adidas")

	inst, err := mc3.NewInstance(u, queries, costs, mc3.InstanceOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("instance: %d queries, %d candidate classifiers\n",
		inst.NumQueries(), inst.NumClassifiers())

	// Solve: dispatches to the exact algorithm for short-query loads and
	// to the approximation algorithm (Algorithm 3) here (k = 3).
	sol, err := mc3.Solve(inst, mc3.DefaultSolveOptions())
	if err != nil {
		log.Fatal(err)
	}
	if err := inst.Verify(sol); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("total construction cost: %gN\n", sol.Cost)
	fmt.Println("classifiers to train:")
	for _, id := range sol.Selected {
		fmt.Printf("  %v  (cost %gN)\n", u.SetNames(inst.Classifier(id)), inst.Cost(id))
	}

	// The paper's optimum is {AC, AJ, W} at 7N; compare against the
	// naive extremes.
	po, err := mc3.PropertyOriented(inst, mc3.DefaultSolveOptions())
	if err != nil {
		log.Fatal(err)
	}
	qo, err := mc3.QueryOriented(inst, mc3.DefaultSolveOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbaselines: one-classifier-per-property %gN, one-classifier-per-query %gN\n",
		po.Cost, qo.Cost)
}
