package mc3

import (
	"math"
	"strings"
	"testing"
)

// exampleInstance is Example 1.1 from the paper (optimal cost 7).
func exampleInstance(t testing.TB) (*Universe, *Instance) {
	t.Helper()
	u := NewUniverse()
	queries := []PropSet{
		u.Set("team:juventus", "color:white", "brand:adidas"),
		u.Set("team:chelsea", "brand:adidas"),
	}
	costs := NewCostTable(math.Inf(1))
	costs.Set(u.Set("team:chelsea"), 5)
	costs.Set(u.Set("brand:adidas"), 5)
	costs.Set(u.Set("team:juventus"), 5)
	costs.Set(u.Set("color:white"), 1)
	costs.Set(u.Set("brand:adidas", "team:chelsea"), 3)
	costs.Set(u.Set("brand:adidas", "color:white"), 5)
	costs.Set(u.Set("brand:adidas", "team:juventus"), 3)
	costs.Set(u.Set("team:juventus", "color:white"), 4)
	costs.Set(u.Set("team:juventus", "color:white", "brand:adidas"), 5)
	inst, err := NewInstance(u, queries, costs, InstanceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return u, inst
}

func TestSolveDispatchesGeneral(t *testing.T) {
	_, inst := exampleInstance(t)
	sol, err := Solve(inst, DefaultSolveOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Verify(sol); err != nil {
		t.Fatal(err)
	}
	if sol.Cost != 7 {
		t.Errorf("Solve cost = %v, want 7 (the paper's optimum {AC, AJ, W})", sol.Cost)
	}
}

func TestSolveDispatchesKTwo(t *testing.T) {
	u := NewUniverse()
	queries := []PropSet{u.Set("a", "b"), u.Set("b", "c")}
	costs := NewCostTable(math.Inf(1))
	costs.Set(u.Set("a"), 3)
	costs.Set(u.Set("b"), 3)
	costs.Set(u.Set("c"), 3)
	costs.Set(u.Set("a", "b"), 4)
	costs.Set(u.Set("b", "c"), 4)
	inst, err := NewInstance(u, queries, costs, InstanceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := Solve(inst, DefaultSolveOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Exact: min(AB+BC=8, A+B+C=9, AB+C=7, A+B+BC=10, ...) — AB+C? covers
	// ab via AB, bc via B? no B... {AB, BC}=8 vs {AB,C,B?}... optimal is
	// {B, A, C} = 9 vs {AB, BC} = 8 vs {AB, C + B?}: bc needs B+C (B not
	// selected) or BC. {AB, BC} = 8 is optimal... or {B,A,C}=9. So 8.
	if sol.Cost != 8 {
		t.Errorf("Solve (k=2) cost = %v, want 8", sol.Cost)
	}
	if exact, err := SolveExact(inst, DefaultSolveOptions()); err != nil || exact.Cost != sol.Cost {
		t.Errorf("exact disagrees: %v vs %v (%v)", exact.Cost, sol.Cost, err)
	}
}

func TestAllExportedSolvers(t *testing.T) {
	_, inst := exampleInstance(t)
	for name, f := range map[string]SolverFunc{
		"general":     SolveGeneral,
		"short-first": SolveShortFirst,
		"exact":       SolveExact,
		"prop":        PropertyOriented,
		"query":       QueryOriented,
		"local":       LocalGreedy,
	} {
		sol, err := f(inst, DefaultSolveOptions())
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if err := inst.Verify(sol); err != nil {
			t.Errorf("%s: invalid solution: %v", name, err)
		}
	}
}

func TestPreprocessExported(t *testing.T) {
	_, inst := exampleInstance(t)
	r, err := Preprocess(inst, PrepFull)
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.Step3Removed != 1 {
		t.Errorf("Step3Removed = %d, want 1 (JAW)", r.Stats.Step3Removed)
	}
	if _, err := Preprocess(inst, PrepMinimal); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzeExported(t *testing.T) {
	_, inst := exampleInstance(t)
	p := Analyze(inst)
	if p.MaxQueryLen != 3 || p.Incidence != 2 {
		t.Errorf("Analyze = %+v", p)
	}
}

func TestMergeAttributes(t *testing.T) {
	u := NewUniverse()
	queries := []PropSet{
		u.Set("team:juventus", "color:white", "brand:adidas"),
		u.Set("team:chelsea", "brand:adidas"),
	}
	mu, merged := MergeAttributes(u, queries, AttrPrefix(":"))
	if mu.Size() != 3 {
		t.Fatalf("merged universe has %d attributes, want 3 (team, color, brand)", mu.Size())
	}
	// Queries become tcb and tb (Section 5.3's example).
	if merged[0].Len() != 3 || merged[1].Len() != 2 {
		t.Errorf("merged queries = %v, %v", merged[0], merged[1])
	}
	// The merged instance adheres to the same model: solvable as usual.
	costs := NewCostTable(math.Inf(1))
	team, _ := mu.Lookup("team")
	color, _ := mu.Lookup("color")
	brand, _ := mu.Lookup("brand")
	costs.Set(NewPropSet(team), 10)
	costs.Set(NewPropSet(color), 2)
	costs.Set(NewPropSet(brand), 4)
	costs.Set(NewPropSet(team, brand), 9)
	inst, err := NewInstance(mu, merged, costs, InstanceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := Solve(inst, DefaultSolveOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Optimal: TB (9) + C (2) = 11 beats T+C+B = 16.
	if sol.Cost != 11 {
		t.Errorf("merged solve cost = %v, want 11", sol.Cost)
	}
}

func TestAttrPrefix(t *testing.T) {
	f := AttrPrefix(":")
	if f("color:white") != "color" || f("plain") != "plain" || f("a:b:c") != "a" {
		t.Error("AttrPrefix misbehaves")
	}
}

func TestSolveWithMultiValued(t *testing.T) {
	u := NewUniverse()
	// Two queries over two colors; a single multi-valued "color"
	// classifier decides both color properties at once.
	queries := []PropSet{
		u.Set("type:shirt", "color:white"),
		u.Set("type:dress", "color:blue"),
	}
	costs := NewCostTable(math.Inf(1))
	costs.Set(u.Set("type:shirt"), 2)
	costs.Set(u.Set("type:dress"), 2)
	costs.Set(u.Set("color:white"), 6)
	costs.Set(u.Set("color:blue"), 6)
	inst, err := NewInstance(u, queries, costs, InstanceOptions{})
	if err != nil {
		t.Fatal(err)
	}

	white, _ := u.Lookup("color:white")
	blue, _ := u.Lookup("color:blue")
	multi := []MultiValued{{
		Name:       "color",
		Properties: NewPropSet(white, blue),
		Cost:       7,
	}}
	sol, err := SolveWithMultiValued(inst, multi, DefaultSolveOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyMultiSolution(inst, multi, sol); err != nil {
		t.Fatal(err)
	}
	// Shirt(2) + dress(2) + color(7) = 11 beats binary-only 2+2+6+6 = 16.
	if sol.Cost != 11 {
		t.Errorf("multi-valued cost = %v, want 11", sol.Cost)
	}
	if len(sol.MultiValued) != 1 {
		t.Errorf("expected the multi-valued classifier to be selected, got %v", sol.MultiValued)
	}
}

func TestSolveWithMultiValuedIgnoresUseless(t *testing.T) {
	u := NewUniverse()
	queries := []PropSet{u.Set("a", "b")}
	costs := NewCostTable(5)
	inst, err := NewInstance(u, queries, costs, InstanceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	x := u.Intern("unrelated")
	multi := []MultiValued{{Name: "useless", Properties: NewPropSet(x), Cost: 1}}
	sol, err := SolveWithMultiValued(inst, multi, DefaultSolveOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.MultiValued) != 0 {
		t.Error("a multi-valued classifier deciding no query property must not be selected")
	}
	if sol.Cost != 5 {
		t.Errorf("cost = %v, want 5 (the AB classifier)", sol.Cost)
	}
}

func TestSolveWithMultiValuedRejectsBadCost(t *testing.T) {
	_, inst := exampleInstance(t)
	bad := []MultiValued{{Name: "x", Properties: NewPropSet(0), Cost: math.Inf(1)}}
	if _, err := SolveWithMultiValued(inst, bad, DefaultSolveOptions()); err == nil {
		t.Error("infinite multi-valued cost must be rejected")
	}
}

func TestParseQueryLogPublicAPI(t *testing.T) {
	log := "a,b\nb,c\nc\n"
	u := NewUniverse()
	queries, err := ParseQueryLog(strings.NewReader(log), u)
	if err != nil {
		t.Fatal(err)
	}
	if len(queries) != 3 {
		t.Fatalf("queries = %d", len(queries))
	}
	_, inst, err := InstanceFromQueryLog(strings.NewReader(log), UniformCost(1), InstanceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := Solve(inst, DefaultSolveOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Verify(sol); err != nil {
		t.Fatal(err)
	}
	if _, _, err := InstanceFromQueryLog(strings.NewReader(""), UniformCost(1), InstanceOptions{}); err == nil {
		t.Error("empty log must error")
	}
}

func TestSolveBudgetedPublicAPI(t *testing.T) {
	_, inst := exampleInstance(t)
	weights := []float64{3, 1}
	full, err := SolveGeneral(inst, DefaultSolveOptions())
	if err != nil {
		t.Fatal(err)
	}
	sol, err := SolveBudgeted(inst, weights, full.Cost, DefaultSolveOptions())
	if err != nil {
		t.Fatal(err)
	}
	if sol.CoveredWeight != 4 {
		t.Errorf("full budget must cover both queries: weight %v", sol.CoveredWeight)
	}
	half, err := SolveBudgeted(inst, weights, 3, DefaultSolveOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Budget 3 affords only AC → covers the Chelsea query (weight 1)?
	// Ratios: q0 (weight 3) completes at min cost 7? q0 min cover = AJ+W=4
	// or JAW=5 → 4 > 3. q1 completes at 3 (AC). So only q1 fits.
	if half.CoveredWeight != 1 || half.Cost > 3 {
		t.Errorf("budget 3: weight %v cost %v, want weight 1 within budget", half.CoveredWeight, half.Cost)
	}
	exact, err := SolveBudgetedExact(inst, weights, 3, DefaultSolveOptions())
	if err != nil {
		t.Fatal(err)
	}
	if exact.CoveredWeight < half.CoveredWeight {
		t.Error("exact cannot be worse than the heuristic")
	}
}
