package mc3

// Differential testing for the allocation-free classifier-universe
// enumeration: NewInstance's scratch-buffer/byte-key/shape-memoized hot path
// must materialize exactly the instance the straightforward per-mask
// enumeration produces. The reference below is the pre-optimization
// algorithm, kept verbatim in test form; the comparison runs over all three
// workload generators plus the duplicate-heavy shapes the memoization
// targets.

import (
	"math"
	"math/bits"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// refInstance is the reference enumeration: every non-empty subset of every
// query, priced through the cost model, deduplicated by canonical string
// key — the straightforward algorithm NewInstance's hot path optimizes.
type refInstance struct {
	classifiers []PropSet
	costs       []float64
	queryCls    [][]core.QueryClassifier
	clsQueries  [][]int32
}

func refEnumerate(t *testing.T, queries []PropSet, cm CostModel, keepDups bool) *refInstance {
	t.Helper()
	var kept []PropSet
	seen := map[string]bool{}
	for _, q := range queries {
		if !keepDups {
			k := q.Key()
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		kept = append(kept, q)
	}
	ref := &refInstance{queryCls: make([][]core.QueryClassifier, len(kept))}
	byKey := map[string]ClassifierID{}
	for qi, q := range kept {
		full := uint64(1)<<uint(q.Len()) - 1
		for mask := uint64(1); mask <= full; mask++ {
			sub := q.SubsetByMask(mask)
			key := sub.Key()
			id, ok := byKey[key]
			if !ok {
				c := cm.Cost(sub)
				if math.IsInf(c, 1) {
					byKey[key] = NoClassifier
					continue
				}
				id = ClassifierID(len(ref.classifiers))
				ref.classifiers = append(ref.classifiers, sub)
				ref.costs = append(ref.costs, c)
				ref.clsQueries = append(ref.clsQueries, nil)
				byKey[key] = id
			} else if id == NoClassifier {
				continue
			}
			ref.queryCls[qi] = append(ref.queryCls[qi], core.QueryClassifier{ID: id, Mask: mask})
			ref.clsQueries[id] = append(ref.clsQueries[id], int32(qi))
		}
	}
	return ref
}

// compareInstance checks inst against the reference field by field: same
// classifier numbering, costs, per-query classifier lists with masks, and
// per-classifier incidence lists.
func compareInstance(t *testing.T, name string, inst *Instance, ref *refInstance) {
	t.Helper()
	if inst.NumClassifiers() != len(ref.classifiers) {
		t.Fatalf("%s: %d classifiers, reference has %d", name, inst.NumClassifiers(), len(ref.classifiers))
	}
	for id := 0; id < inst.NumClassifiers(); id++ {
		cid := ClassifierID(id)
		if !inst.Classifier(cid).Equal(ref.classifiers[id]) {
			t.Fatalf("%s: classifier %d = %v, reference %v", name, id, inst.Classifier(cid), ref.classifiers[id])
		}
		if inst.Cost(cid) != ref.costs[id] {
			t.Fatalf("%s: cost(%d) = %v, reference %v", name, id, inst.Cost(cid), ref.costs[id])
		}
		got, want := inst.ClassifierQueries(cid), ref.clsQueries[id]
		if len(got) != len(want) {
			t.Fatalf("%s: classifier %d lists %d queries, reference %d", name, id, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: classifier %d query[%d] = %d, reference %d", name, id, i, got[i], want[i])
			}
		}
	}
	if inst.NumQueries() != len(ref.queryCls) {
		t.Fatalf("%s: %d queries, reference has %d", name, inst.NumQueries(), len(ref.queryCls))
	}
	var maxLen, sumLen int
	for qi := 0; qi < inst.NumQueries(); qi++ {
		got, want := inst.QueryClassifiers(qi), ref.queryCls[qi]
		if len(got) != len(want) {
			t.Fatalf("%s: query %d has %d classifiers, reference %d", name, qi, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: query %d classifier[%d] = %+v, reference %+v", name, qi, i, got[i], want[i])
			}
		}
		if l := inst.Query(qi).Len(); l > maxLen {
			maxLen = l
		}
		sumLen += inst.Query(qi).Len()
	}
	if inst.MaxQueryLen() != maxLen {
		t.Errorf("%s: MaxQueryLen = %d, recomputed %d", name, inst.MaxQueryLen(), maxLen)
	}
	if inst.SumQueryLen() != sumLen {
		t.Errorf("%s: SumQueryLen = %d, recomputed %d", name, inst.SumQueryLen(), sumLen)
	}
}

// TestEnumerationDifferentialWorkloads compares the optimized enumeration
// against the reference on all three workload generators.
func TestEnumerationDifferentialWorkloads(t *testing.T) {
	datasets := map[string]*workload.Dataset{
		"synthetic": workload.Synthetic(400, 11),
		"bestbuy":   workload.BestBuy(11),
		"private":   workload.Private(11),
	}
	for name, d := range datasets {
		queries := d.Queries
		if len(queries) > 600 {
			queries = queries[:600]
		}
		for _, keepDups := range []bool{false, true} {
			inst, err := NewInstance(d.Universe, queries, d.Costs, InstanceOptions{KeepDuplicateQueries: keepDups})
			if err != nil {
				t.Fatalf("%s: NewInstance: %v", name, err)
			}
			ref := refEnumerate(t, queries, d.Costs, keepDups)
			label := name
			if keepDups {
				label += "/keep-dups"
			}
			compareInstance(t, label, inst, ref)
		}
	}
}

// TestEnumerationDifferentialDuplicates hammers the shape-memoized path:
// many interleaved duplicates of a few shapes, with some subsets priced
// unavailable so the negative cache is shared across shapes too.
func TestEnumerationDifferentialDuplicates(t *testing.T) {
	u := NewUniverse()
	a, b, c, d, e := u.Intern("a"), u.Intern("b"), u.Intern("c"), u.Intern("d"), u.Intern("e")
	shapes := []PropSet{
		core.NewPropSet(a, b, c),
		core.NewPropSet(b, c),
		core.NewPropSet(c, d, e),
		core.NewPropSet(a),
	}
	var queries []PropSet
	for i := 0; i < 40; i++ {
		queries = append(queries, shapes[i%len(shapes)])
	}
	cm := CostFunc(func(s PropSet) float64 {
		h := int64(17)
		for _, id := range s {
			h = h*31 + int64(id)
		}
		if s.Len() == 2 && h%3 == 0 {
			return math.Inf(1)
		}
		return float64(1 + h%9)
	})
	inst, err := NewInstance(u, queries, cm, InstanceOptions{KeepDuplicateQueries: true})
	if err != nil {
		t.Fatal(err)
	}
	compareInstance(t, "duplicates", inst, refEnumerate(t, queries, cm, true))

	// And the bounded-classifier variant still matches a mask-filtered
	// reference.
	instBounded, err := NewInstance(u, queries, cm, InstanceOptions{MaxClassifierLen: 2})
	if err != nil {
		t.Fatal(err)
	}
	for qi := 0; qi < instBounded.NumQueries(); qi++ {
		for _, qc := range instBounded.QueryClassifiers(qi) {
			if got := bits.OnesCount64(qc.Mask); got > 2 {
				t.Fatalf("bounded instance kept a length-%d classifier", got)
			}
		}
	}
}
