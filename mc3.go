// Package mc3 is a Go implementation of the MC³ problem — Minimization of
// Classifier Construction Cost for Search Queries (Gershtein, Milo, Morami,
// Novgorodov; SIGMOD 2020).
//
// Given a load of conjunctive search queries, each a set of properties, and
// a construction-cost estimate for every binary classifier (a classifier
// tests the conjunction of a subset of some query's properties), the MC³
// problem asks for the cheapest set of classifiers that covers the load: a
// query q is covered when some selected classifiers, each testing a subset
// of q, jointly test exactly q.
//
// The package offers:
//
//   - Instance construction from queries and a cost model (the classifier
//     universe C_Q is enumerated automatically; price classifiers at
//     math.Inf(1) to exclude them).
//   - Solve, which dispatches to the exact polynomial algorithm for loads
//     whose queries have at most two properties (Algorithm 2: bipartite
//     weighted vertex cover via max-flow) and to the approximation
//     algorithm otherwise (Algorithm 3: weighted set cover with the
//     min{ln I + ln(k−1) + 1, 2^{k−1}} guarantee of Theorem 5.3).
//   - The paper's preprocessing procedure (Algorithm 1), the Short-First
//     heuristic, the experimental baselines, and an exact branch-and-bound
//     solver for small instances.
//   - The multi-valued classifier extension (Section 5.3) via
//     MergeAttributes.
//
// Quickstart:
//
//	u := mc3.NewUniverse()
//	queries := []mc3.PropSet{
//		u.Set("team:juventus", "color:white", "brand:adidas"),
//		u.Set("team:chelsea", "brand:adidas"),
//	}
//	costs := mc3.NewCostTable(math.Inf(1))
//	costs.Set(u.Set("brand:adidas", "team:chelsea"), 3)
//	// ... price the remaining classifiers ...
//	inst, err := mc3.NewInstance(u, queries, costs, mc3.InstanceOptions{})
//	sol, err := mc3.Solve(inst, mc3.DefaultSolveOptions())
package mc3

import (
	"io"
	"log/slog"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/prep"
	"repro/internal/solver"
)

// Core model types (see package core for full documentation).
type (
	// Universe interns property names.
	Universe = core.Universe
	// PropID is an interned property identifier.
	PropID = core.PropID
	// PropSet is a canonical property set — a query or a classifier.
	PropSet = core.PropSet
	// Instance is a materialized MC³ problem.
	Instance = core.Instance
	// InstanceOptions configure instance construction (bounded classifier
	// length, query-length limits, duplicate handling).
	InstanceOptions = core.Options
	// ClassifierID indexes a classifier within an Instance.
	ClassifierID = core.ClassifierID
	// Solution is a selected classifier set with its total cost.
	Solution = core.Solution
	// CostModel prices classifiers.
	CostModel = core.CostModel
	// CostFunc adapts a function to CostModel.
	CostFunc = core.CostFunc
	// CostTable is a map-backed CostModel.
	CostTable = core.CostTable
	// UniformCost prices every classifier identically.
	UniformCost = core.UniformCost
	// Params are the analysis parameters (incidence, frequency, degree).
	Params = core.Params
)

// Preprocessing types (the paper's Algorithm 1).
type (
	// PrepLevel selects how much of the preprocessing procedure runs.
	PrepLevel = prep.Level
	// PrepResult is the preprocessing outcome layered over an instance.
	PrepResult = prep.Result
	// PrepStats counts per-step preprocessing effects.
	PrepStats = prep.Stats
)

// Preprocessing levels.
const (
	// PrepMinimal performs only mandatory selections and feasibility checks.
	PrepMinimal = prep.Minimal
	// PrepFull runs all four steps of Algorithm 1.
	PrepFull = prep.Full
)

// Solver configuration.
type (
	// SolveOptions configure the solvers. Set Context and/or Timeout to
	// bound a solve (cancellation checkpoints run throughout the stack and
	// return an error satisfying errors.Is(err, context.Canceled) or
	// errors.Is(err, context.DeadlineExceeded)); attach a *SolveStats to
	// collect per-phase observability data.
	SolveOptions = solver.Options
	// WSCMethod selects Algorithm 3's internal set-cover engine(s).
	WSCMethod = solver.WSCMethod
	// SolverFunc is the uniform solver signature.
	SolverFunc = solver.Func
	// SolveStats accumulates solve observability data (per-phase wall
	// times, preprocessing counters, component counts, engine choices,
	// max-flow work, cancellation reason). Attach one via
	// SolveOptions.Stats; call Reset between solves for per-solve numbers.
	SolveStats = solver.SolveStats
)

// Observability types (see docs/OBSERVABILITY.md). Attach a Tracer via
// SolveOptions.Tracer to receive one event per completed span of the solve;
// SolveStats is populated from the same events.
type (
	// Tracer creates spans and fans completion events out to sinks.
	Tracer = obs.Tracer
	// TraceSink consumes completed spans; implementations must be safe for
	// concurrent use.
	TraceSink = obs.Sink
	// TraceEvent is the record of one completed span.
	TraceEvent = obs.Event
	// MetricsRegistry holds counters, gauges, and duration histograms with
	// Prometheus text and expvar exposition.
	MetricsRegistry = obs.Registry
)

// NewTracer returns a Tracer emitting to the given sinks. Extend it with
// Tracer.WithSink / Tracer.WithMetrics; a tracer with no sinks and no
// registry is disabled at zero cost.
func NewTracer(sinks ...TraceSink) *Tracer { return obs.New(sinks...) }

// NewJSONLTraceSink returns a sink writing one JSON object per completed
// span to w.
func NewJSONLTraceSink(w io.Writer) TraceSink { return obs.NewJSONLSink(w) }

// NewSlogTraceSink returns a sink logging completed spans through l
// (slog.Default() when nil).
func NewSlogTraceSink(l *slog.Logger) TraceSink { return obs.NewSlogSink(l) }

// NewMetricsRegistry returns an empty metrics registry; attach it with
// Tracer.WithMetrics to record per-span counters and duration histograms.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// Component-solution caching (see internal/cache and docs/SERVING.md).
// Attach a Cache via SolveOptions.Cache to memoize residual-component
// solutions across solves: repeated components — the common case when the
// same query log, or structurally overlapping logs, are solved again and
// again by a long-lived process — are answered from the cache in
// O(signature) instead of re-running the set-cover or max-flow machinery.
type (
	// Cache is a concurrency-safe, bounded LRU memoization of component
	// solutions, keyed by a canonical (renaming-invariant) signature.
	Cache = cache.Cache
	// CacheConfig configures a Cache (entry bound, cost quantization,
	// optional metrics registry).
	CacheConfig = cache.Config
	// CacheStats is a snapshot of a Cache's hit/miss/eviction counters.
	CacheStats = cache.Stats
)

// NewCache returns an empty component-solution cache. The zero CacheConfig
// is valid: a 4096-entry LRU keyed on exact costs, no metrics.
func NewCache(cfg CacheConfig) *Cache { return cache.New(cfg) }

// Set-cover engine choices for SolveOptions.WSC.
const (
	// WSCAuto runs greedy + primal-dual and keeps the cheaper result
	// (the paper's Algorithm 3).
	WSCAuto = solver.WSCAuto
	// WSCGreedy runs only the Chvátal greedy algorithm.
	WSCGreedy = solver.WSCGreedy
	// WSCPrimalDual runs only the primal-dual f-approximation.
	WSCPrimalDual = solver.WSCPrimalDual
	// WSCLPRounding runs only simplex LP-relaxation rounding.
	WSCLPRounding = solver.WSCLPRounding
	// WSCAutoLP runs greedy + LP rounding and keeps the cheaper result.
	WSCAutoLP = solver.WSCAutoLP
)

// NoClassifier is the invalid ClassifierID.
const NoClassifier = core.NoClassifier

// NewUniverse returns an empty property universe.
func NewUniverse() *Universe { return core.NewUniverse() }

// NewInstance materializes an MC³ instance from a query load and cost model.
func NewInstance(u *Universe, queries []PropSet, cm CostModel, opts InstanceOptions) (*Instance, error) {
	return core.NewInstance(u, queries, cm, opts)
}

// NewPropSet builds a canonical property set from IDs.
func NewPropSet(ids ...PropID) PropSet { return core.NewPropSet(ids...) }

// NewCostTable returns an empty cost table with the given default cost.
func NewCostTable(def float64) *CostTable { return core.NewCostTable(def) }

// Analyze computes the instance parameters used by the paper's
// approximation bounds.
func Analyze(inst *Instance) Params { return core.Analyze(inst) }

// Preprocess runs the paper's Algorithm 1 at the given level.
func Preprocess(inst *Instance, level PrepLevel) (*PrepResult, error) {
	return prep.Run(inst, level)
}

// DefaultSolveOptions returns the paper's default configuration: full
// preprocessing, Algorithm 3 = greedy + primal-dual, Dinic max-flow.
func DefaultSolveOptions() SolveOptions { return solver.DefaultOptions() }

// Solve covers the query load at (approximately) minimal cost: it runs the
// exact polynomial Algorithm 2 when every query has at most two properties,
// and the approximate Algorithm 3 otherwise. Honors opts.Context and
// opts.Timeout, and populates opts.Stats when attached.
func Solve(inst *Instance, opts SolveOptions) (*Solution, error) {
	if inst.MaxQueryLen() <= 2 {
		return solver.KTwo(inst, opts)
	}
	return solver.General(inst, opts)
}

// The individual algorithms, exposed with the paper's names.
var (
	// SolveKTwo is Algorithm 2: exact for query length ≤ 2 (MC³[S]).
	SolveKTwo SolverFunc = solver.KTwo
	// SolveGeneral is Algorithm 3: the general approximation (MC³[G]).
	SolveGeneral SolverFunc = solver.General
	// SolveShortFirst covers length ≤ 2 queries exactly first, then the
	// residual (the "almost k = 2" heuristic).
	SolveShortFirst SolverFunc = solver.ShortFirst
	// SolveExact is the branch-and-bound oracle for small instances.
	SolveExact SolverFunc = solver.Exact
	// PropertyOriented is the all-singletons baseline.
	PropertyOriented SolverFunc = solver.PropertyOriented
	// QueryOriented is the one-classifier-per-query baseline.
	QueryOriented SolverFunc = solver.QueryOriented
	// LocalGreedy is the per-query greedy baseline.
	LocalGreedy SolverFunc = solver.LocalGreedy
	// Mixed is the uniform-cost k ≤ 2 algorithm of [13].
	Mixed SolverFunc = solver.Mixed
)

// SolvePortfolio runs every applicable algorithm (exact Algorithm 2 for
// short loads; otherwise Algorithm 3, Short-First, and Local-Greedy) and
// returns the cheapest valid solution.
var SolvePortfolio SolverFunc = solver.Portfolio
