# Convenience targets for the mc3 repository. Everything is plain `go` —
# these exist only as documentation of the common invocations.

GO ?= go

.PHONY: all build vet test test-race race check bench bench-full experiments experiments-quick serve fuzz clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

race: test-race

# The pre-merge gate: vet plus the full test suite under the race detector.
check:
	$(GO) vet ./...
	$(GO) test -race ./...

# One benchmark per paper table/figure (reduced scale) + micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem -run xxx .

bench-full:
	$(GO) test -bench=. -benchmem -run xxx ./...

# Regenerate the paper's experimental study at full scale (≈ half a minute).
experiments:
	$(GO) run ./cmd/mc3bench

experiments-quick:
	$(GO) run ./cmd/mc3bench -quick

# Run the solve daemon locally (POST instances to http://localhost:8080/solve;
# see docs/SERVING.md for the API and the component-solution cache behind it).
serve:
	$(GO) run ./cmd/mc3serve -addr localhost:8080

# Short fuzzing passes over the parser and the set algebra.
fuzz:
	$(GO) test -fuzz FuzzRead -fuzztime 30s ./internal/textio/
	$(GO) test -fuzz FuzzPropSetAlgebra -fuzztime 30s ./internal/core/

clean:
	$(GO) clean ./...
