# Convenience targets for the mc3 repository. Everything is plain `go` —
# these exist only as documentation of the common invocations.

GO ?= go

.PHONY: all build vet test test-race race check bench bench-full bench-sched bench-baseline bench-compare cluster-smoke stream-smoke experiments experiments-quick train serve fuzz clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

race: test-race

# The pre-merge gate: vet plus the full test suite under the race detector.
check:
	$(GO) vet ./...
	$(GO) test -race ./...

# One benchmark per paper table/figure (reduced scale) + micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem -run xxx .

bench-full:
	$(GO) test -bench=. -benchmem -run xxx ./...

# Serial-vs-parallel scheduler comparison: the BenchmarkSched* pairs plus the
# mc3bench parallelism sweep (which also verifies cost-identity per level).
bench-sched:
	$(GO) test -bench Sched -benchmem -count=$(BENCH_COUNT) -run xxx .
	$(GO) run ./cmd/mc3bench -exp sched

# End-to-end cluster gate: two shard processes + a router process, replayed
# against with the per-batch differential check, plus the hedging experiment
# (docs/CLUSTER.md). Artifacts land in ./cluster-smoke.
cluster-smoke:
	sh scripts/cluster-smoke.sh

# Streaming smoke gate: a generated query log solved materialized, streamed
# finish-only, and streamed with mid-stream sealing must cost identically;
# plus the sampling path and the peak-heap stream-mem differential
# (docs/STREAMING.md). Artifacts land in ./stream-smoke.
stream-smoke:
	sh scripts/stream-smoke.sh

# Before/after comparison flow (see docs/PERFORMANCE.md):
#   git stash / git checkout <old>; make bench-baseline   # writes bench-old.txt
#   git checkout <new>;            make bench-compare     # writes bench-new.txt, diffs
# benchstat (golang.org/x/perf) sharpens the diff when installed; without it
# the two files are kept for manual comparison.
BENCH_COUNT ?= 5
BENCH_PKGS  ?= .

bench-baseline:
	$(GO) test -bench=. -benchmem -count=$(BENCH_COUNT) -run xxx $(BENCH_PKGS) | tee bench-old.txt

bench-compare:
	$(GO) test -bench=. -benchmem -count=$(BENCH_COUNT) -run xxx $(BENCH_PKGS) | tee bench-new.txt
	@if command -v benchstat >/dev/null 2>&1; then \
		benchstat bench-old.txt bench-new.txt; \
	else \
		echo "benchstat not installed; compare bench-old.txt and bench-new.txt by hand"; \
		echo "  (go install golang.org/x/perf/cmd/benchstat@latest)"; \
	fi

# Regenerate the paper's experimental study at full scale (≈ half a minute).
experiments:
	$(GO) run ./cmd/mc3bench

experiments-quick:
	$(GO) run ./cmd/mc3bench -quick

# Harvest → train loop for the learned engine selector (docs/SELECTOR.md):
# harvest race outcomes across the fig3 workloads, then fit model.json and
# print the regret report. Attach with `-selector model.json` on any CLI.
train:
	$(GO) run ./cmd/mc3bench -quick -exp fig3a,fig3b,fig3c,fig3d -stats -features features.jsonl
	$(GO) run ./cmd/mc3bench -features features.jsonl -train-selector model.json -regret regret.json

# Run the solve daemon locally (POST instances to http://localhost:8080/solve;
# see docs/SERVING.md for the API and the component-solution cache behind it).
serve:
	$(GO) run ./cmd/mc3serve -addr localhost:8080

# Short fuzzing passes over the parser and the set algebra.
fuzz:
	$(GO) test -fuzz FuzzRead -fuzztime 30s ./internal/textio/
	$(GO) test -fuzz FuzzPropSetAlgebra -fuzztime 30s ./internal/core/

clean:
	$(GO) clean ./...
