// Command mc3serve is a long-lived HTTP daemon that answers MC³ solve
// requests. Where mc3solve pays the full solve cost on every invocation, the
// daemon keeps a process-wide component-solution cache (internal/cache), so
// query loads that repeat components — the normal shape of production query
// logs — are answered increasingly from memory.
//
// Usage:
//
//	mc3serve [-addr :8080] [-algo auto] [-wsc auto] [-prep full]
//	         [-engine dinic] [-parallel -1] [-cache-size 4096]
//	         [-cache-quantum 0] [-request-timeout 30s] [-max-body 8388608]
//	         [-max-sessions 64]
//
// API (see docs/SERVING.md and docs/INCREMENTAL.md):
//
//	POST   /solve      — body: instance JSON (the mc3solve/textio format);
//	                     response: {"cost", "classifiers", "queries",
//	                     "seconds", "algorithm", "cache_hit_rate"}.
//	POST   /load       — create an incremental session from an instance.
//	POST   /session/{id}/delta    — apply a delta batch to a session.
//	GET    /session/{id}/solution — a session's current solution.
//	DELETE /session/{id}          — drop a session.
//	GET    /healthz    — liveness probe, "ok".
//	GET    /stats      — JSON snapshot: uptime, request counters, cache and
//	                     session stats, solve-latency quantiles, scheduler
//	                     counters, flight-recorder counters.
//	GET    /metrics    — Prometheus text exposition of the process registry.
//	GET    /debug/requests    — flight recorder: recent request traces.
//	GET    /debug/trace/{id}  — one retained trace by request or span ID.
//
// Every solving endpoint propagates X-Request-ID (honored inbound, echoed
// outbound, generated when absent) and runs under a root span retained by an
// in-memory flight recorder (-flight); slow or failed requests are
// additionally appended to -slow-log as JSONL. -feature-log harvests one
// feature record per solved component (docs/OBSERVABILITY.md).
//
// During shutdown drain, new requests are answered 503 with a Retry-After
// header while in-flight requests complete.
//
// Each request is solved under its own deadline: the request context (client
// disconnect cancels the solve) bounded by -request-timeout. Timeouts answer
// 504, client cancellations 499, malformed or infeasible instances 4xx.
// SIGINT/SIGTERM drain in-flight requests before exit.
//
// Observability: the standard flags (-spans, -log-spans, -cpuprofile,
// -memprofile, -trace, -debug-addr) work as in the other CLIs; /metrics is
// additionally served on the main address so scraping needs no second port.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/bipartite"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/prep"
	"repro/internal/selector"
	"repro/internal/solver"
	"repro/internal/textio"
)

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "mc3serve:", err)
		os.Exit(1)
	}
}

// config is the parsed daemon configuration.
type config struct {
	addr          string
	algo          string
	wsc           string
	prep          string
	engine        string
	parallel      int
	cacheSize     int
	cacheQuantum  float64
	reqTimeout    time.Duration
	maxBody       int64
	validate      bool
	maxSessions   int
	flight        int
	slowLog       string
	slowThreshold time.Duration
	featureLog    string
	selectorPath  string

	// slowW / featureW receive the slow-query and feature JSONL streams.
	// run() opens them from -slow-log / -feature-log; tests inject buffers.
	slowW    io.Writer
	featureW io.Writer
}

// run parses flags, builds the server, and serves until a termination signal
// arrives; logs go to logw.
func run(args []string, logw io.Writer) (retErr error) {
	fs := flag.NewFlagSet("mc3serve", flag.ContinueOnError)
	cfg := config{}
	fs.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	fs.StringVar(&cfg.algo, "algo", "auto", "algorithm: auto|ktwo|general|short-first|portfolio")
	fs.StringVar(&cfg.wsc, "wsc", "auto", "Algorithm 3 set-cover engine: auto|greedy|primal-dual|lp-rounding|auto-lp")
	fs.StringVar(&cfg.prep, "prep", "full", "preprocessing level: full|minimal")
	fs.StringVar(&cfg.engine, "engine", "dinic", "Algorithm 2 max-flow engine: dinic|push-relabel|capacity-scaling")
	fs.IntVar(&cfg.parallel, "parallel", -1, "components solved concurrently per request: 0 or 1 solves serially, n > 1 uses n workers, -1 (the default) uses GOMAXPROCS")
	fs.IntVar(&cfg.cacheSize, "cache-size", cache.DefaultMaxEntries, "component-solution cache entries (0 disables the cache)")
	fs.Float64Var(&cfg.cacheQuantum, "cache-quantum", 0, "cost quantum for cache keys (0 = exact costs)")
	fs.DurationVar(&cfg.reqTimeout, "request-timeout", 30*time.Second, "per-request solve deadline (0 = client-controlled only)")
	fs.Int64Var(&cfg.maxBody, "max-body", 8<<20, "maximum request body bytes")
	fs.BoolVar(&cfg.validate, "validate", true, "verify every solution before answering")
	fs.IntVar(&cfg.maxSessions, "max-sessions", 64, "maximum live incremental sessions")
	fs.IntVar(&cfg.flight, "flight", 256, "span trees retained by the in-memory flight recorder, served at /debug/requests (0 disables)")
	fs.StringVar(&cfg.slowLog, "slow-log", "", "append a JSONL record with the full span tree of every slow or failed request to this file")
	fs.DurationVar(&cfg.slowThreshold, "slow-threshold", time.Second, "requests at or above this latency are captured in -slow-log")
	fs.StringVar(&cfg.featureLog, "feature-log", "", "harvest one JSONL feature record per solved component into this file (see docs/OBSERVABILITY.md)")
	fs.StringVar(&cfg.selectorPath, "selector", "", "trained selector model (mc3bench -train-selector): skips confident set-cover engine races and informs -algo auto dispatch (see docs/SELECTOR.md)")
	var obsCfg obs.CLIConfig
	obsCfg.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if cfg.slowLog != "" && cfg.flight <= 0 {
		return fmt.Errorf("-slow-log requires the flight recorder (-flight > 0)")
	}
	for _, f := range []struct {
		path string
		dst  *io.Writer
	}{{cfg.slowLog, &cfg.slowW}, {cfg.featureLog, &cfg.featureW}} {
		if f.path == "" {
			continue
		}
		w, err := os.OpenFile(f.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := w.Close(); cerr != nil && retErr == nil {
				retErr = cerr
			}
		}()
		*f.dst = w
	}

	obsCLI, err := obsCfg.Start()
	if err != nil {
		return err
	}
	defer func() {
		if cerr := obsCLI.Close(); cerr != nil && retErr == nil {
			retErr = cerr
		}
	}()

	srv, err := newServer(cfg, obsCLI.Tracer)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	fmt.Fprintf(logw, "mc3serve: listening on http://%s (cache %d entries, timeout %v)\n",
		ln.Addr(), cfg.cacheSize, cfg.reqTimeout)
	if obsCLI.DebugAddr != "" {
		fmt.Fprintf(logw, "mc3serve: debug server on http://%s\n", obsCLI.DebugAddr)
	}

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(logw, "mc3serve: shutting down, draining in-flight requests")
	srv.draining.Store(true)
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		return err
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	st := srv.cache.Stats()
	fmt.Fprintf(logw, "mc3serve: served %d solves (%d errors), cache hit rate %.1f%%\n",
		srv.requests.Load(), srv.errored.Load(), 100*st.HitRate())
	return nil
}

// server is the HTTP handler: immutable solver configuration plus the shared
// mutable state (cache, metrics, counters). Safe for concurrent requests.
type server struct {
	cfg      config
	opts     solver.Options // template; Context is set per request
	cache    *cache.Cache   // nil when -cache-size 0
	registry *obs.Registry
	tracer   *obs.Tracer         // the request tracer (== opts.Tracer)
	flight   *obs.FlightRecorder // nil when -flight 0
	harvest  *obs.HarvestSink    // nil when no -feature-log
	mux      *http.ServeMux
	started  time.Time
	bootID   string // request-ID prefix, unique per process
	sessions sessions

	// solveSecsAll aggregates solve latency across endpoints (the
	// pre-existing mc3serve_solve_seconds family); solveSecs holds the
	// per-endpoint split series.
	solveSecsAll *obs.Histogram
	solveSecs    map[string]*obs.Histogram

	requests atomic.Int64
	errored  atomic.Int64
	reqSeq   atomic.Int64
	draining atomic.Bool
}

// newServer validates cfg and assembles the handler.
func newServer(cfg config, tracer *obs.Tracer) (*server, error) {
	opts, err := buildOptions(cfg)
	if err != nil {
		return nil, err
	}
	if err := checkAlgo(cfg.algo); err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	reg.Publish("mc3serve")
	s := &server{
		cfg:      cfg,
		opts:     opts,
		registry: reg,
		started:  time.Now(),
		sessions: sessions{m: make(map[string]*session), max: cfg.maxSessions},
	}
	s.bootID = strconv.FormatInt(s.started.UnixNano(), 36)
	if cfg.cacheSize > 0 {
		s.cache = cache.New(cache.Config{
			MaxEntries:  cfg.cacheSize,
			CostQuantum: cfg.cacheQuantum,
			Metrics:     reg,
		})
	}
	s.opts.Cache = s.cache

	// The request tracer: caller sinks (-spans etc.), then the flight
	// recorder and the feature harvester, then the metrics registry. One
	// tracer serves every request; the per-request root span opened by
	// instrument() fans out to all of them.
	if cfg.flight > 0 {
		s.flight = obs.NewFlightRecorder(cfg.flight)
		if cfg.slowW != nil {
			s.flight.SetSlowLog(cfg.slowW, cfg.slowThreshold)
		}
		tracer = tracer.WithSink(s.flight)
	}
	if cfg.featureW != nil {
		s.harvest = obs.NewHarvestSink(cfg.featureW, "mc3serve")
		tracer = tracer.WithSink(s.harvest)
		s.opts.FeatureAttrs = true
	}
	s.opts.Tracer = tracer.WithMetrics(reg)
	s.tracer = s.opts.Tracer

	s.solveSecsAll = reg.Histogram("mc3serve_solve_seconds")
	s.solveSecs = map[string]*obs.Histogram{
		"solve": reg.Histogram(`mc3serve_solve_seconds{endpoint="solve"}`),
		"load":  reg.Histogram(`mc3serve_solve_seconds{endpoint="load"}`),
		"delta": reg.Histogram(`mc3serve_solve_seconds{endpoint="delta"}`),
	}

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /solve", s.instrument("solve", s.handleSolve))
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.Handle("GET /metrics", reg)
	s.mux.HandleFunc("POST /load", s.instrument("load", s.handleLoad))
	s.mux.HandleFunc("POST /session/{id}/delta", s.instrument("delta", s.handleDelta))
	s.mux.HandleFunc("GET /session/{id}/solution", s.instrument("solution", s.handleSolution))
	s.mux.HandleFunc("DELETE /session/{id}", s.instrument("session_delete", s.handleSessionDelete))
	s.mux.HandleFunc("GET /debug/requests", s.handleDebugRequests)
	s.mux.HandleFunc("GET /debug/trace/{id}", s.handleDebugTrace)
	return s, nil
}

// ServeHTTP dispatches requests; once the server is draining for shutdown
// every request is answered 503 + Retry-After immediately instead of
// racing the listener teardown.
func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", "5")
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "server is draining"})
		return
	}
	s.mux.ServeHTTP(w, r)
}

// solveResponse is the /solve success document.
type solveResponse struct {
	Cost         float64    `json:"cost"`
	Classifiers  [][]string `json:"classifiers"`
	Queries      int        `json:"queries"`
	Seconds      float64    `json:"seconds"`
	Algorithm    string     `json:"algorithm"`
	CacheHitRate float64    `json:"cache_hit_rate"`
}

// errorResponse is the JSON error document for non-2xx answers.
type errorResponse struct {
	Error string `json:"error"`
}

// statusClientClosedRequest is nginx's conventional code for a request whose
// client went away before the answer was ready.
const statusClientClosedRequest = 499

// bodyBufPool recycles the request-body staging buffers of /solve and /load.
// Decoding straight off the wire made every request pay the JSON decoder's
// internal read-buffer churn; staging through a pooled buffer makes the
// steady-state serving path allocation-free on the transport side.
var bodyBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// bodyBufKeep caps the capacity of buffers returned to the pool, so one
// max-body-sized request doesn't pin megabytes for the daemon's lifetime.
const bodyBufKeep = 1 << 20

// readInstance reads and parses a request body holding an instance file,
// staging it through a pooled buffer. The returned File does not alias the
// buffer (textio.Read copies what it keeps).
func (s *server) readInstance(w http.ResponseWriter, r *http.Request) (*textio.File, error) {
	buf := bodyBufPool.Get().(*bytes.Buffer)
	defer func() {
		if buf.Cap() <= bodyBufKeep {
			buf.Reset()
			bodyBufPool.Put(buf)
		}
	}()
	buf.Reset()
	if _, err := buf.ReadFrom(http.MaxBytesReader(w, r.Body, s.cfg.maxBody)); err != nil {
		return nil, err
	}
	return textio.Read(bytes.NewReader(buf.Bytes()))
}

// failParse maps an instance-parse error to its HTTP status and answers it.
func (s *server) failParse(w http.ResponseWriter, err error) {
	code := http.StatusBadRequest
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		code = http.StatusRequestEntityTooLarge
	}
	s.fail(w, code, fmt.Errorf("parse instance: %w", err))
}

// handleSolve answers POST /solve: parse the instance, solve it under the
// request's deadline with the shared cache, answer JSON.
func (s *server) handleSolve(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	s.registry.Counter("mc3serve_requests_total").Inc()

	file, err := s.readInstance(w, r)
	if err != nil {
		s.failParse(w, err)
		return
	}
	_, inst, err := file.Build(core.Options{})
	if err != nil {
		s.fail(w, http.StatusUnprocessableEntity, fmt.Errorf("build instance: %w", err))
		return
	}
	fn, algoName := pickAlgorithm(s.cfg.algo, inst, s.opts)

	// The solve runs under the request context — a dropped connection
	// cancels it — additionally bounded by the configured timeout. The
	// cancellation checkpoints throughout the solver stack make both
	// effective mid-solve.
	opts := s.opts
	opts.Context = r.Context()
	opts.Timeout = s.cfg.reqTimeout
	opts.Validate = s.cfg.validate

	start := time.Now()
	sol, err := fn(inst, opts)
	elapsed := time.Since(start)
	s.observeSolve("solve", elapsed.Seconds())
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			s.fail(w, http.StatusGatewayTimeout, fmt.Errorf("solve exceeded %v", s.cfg.reqTimeout))
		case errors.Is(err, context.Canceled):
			s.fail(w, statusClientClosedRequest, errors.New("client closed request"))
		default:
			s.fail(w, http.StatusUnprocessableEntity, err)
		}
		return
	}

	writeJSON(w, http.StatusOK, solveResponse{
		Cost:         sol.Cost,
		Classifiers:  textio.SolutionNames(inst, sol),
		Queries:      inst.NumQueries(),
		Seconds:      elapsed.Seconds(),
		Algorithm:    algoName,
		CacheHitRate: s.cache.Stats().HitRate(),
	})
}

// statsResponse is the /stats document.
type statsResponse struct {
	UptimeSeconds float64         `json:"uptime_seconds"`
	Requests      int64           `json:"requests"`
	Errors        int64           `json:"errors"`
	Cache         cache.Stats     `json:"cache"`
	CacheHitRate  float64         `json:"cache_hit_rate"`
	Sessions      sessionsStats   `json:"sessions"`
	SolveLatency  latencyStats    `json:"solve_latency"`
	Sched         schedStats      `json:"sched"`
	Flight        obs.FlightStats `json:"flight"`
}

// latencyStats summarizes a latency histogram: estimated quantiles from the
// registry's fixed log-scale buckets.
type latencyStats struct {
	Count int64   `json:"count"`
	P50   float64 `json:"p50_seconds"`
	P95   float64 `json:"p95_seconds"`
	P99   float64 `json:"p99_seconds"`
}

// schedStats surfaces the work-stealing scheduler's mc3_sched_* counters.
type schedStats struct {
	Runs       int64 `json:"runs"`
	Components int64 `json:"components"`
	Tasks      int64 `json:"tasks"`
	Steals     int64 `json:"steals"`
	Spawns     int64 `json:"spawns"`
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := s.cache.Stats()
	writeJSON(w, http.StatusOK, statsResponse{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Requests:      s.requests.Load(),
		Errors:        s.errored.Load(),
		Cache:         st,
		CacheHitRate:  st.HitRate(),
		Sessions:      s.sessions.snapshot(),
		SolveLatency: latencyStats{
			Count: s.solveSecsAll.Count(),
			P50:   s.solveSecsAll.Quantile(0.50),
			P95:   s.solveSecsAll.Quantile(0.95),
			P99:   s.solveSecsAll.Quantile(0.99),
		},
		Sched: schedStats{
			Runs:       s.registry.Counter("mc3_sched_runs_total").Value(),
			Components: s.registry.Counter("mc3_sched_components_total").Value(),
			Tasks:      s.registry.Counter("mc3_sched_tasks_total").Value(),
			Steals:     s.registry.Counter("mc3_sched_steals_total").Value(),
			Spawns:     s.registry.Counter("mc3_sched_spawns_total").Value(),
		},
		Flight: s.flight.Stats(),
	})
}

// fail answers an error as JSON and counts it.
func (s *server) fail(w http.ResponseWriter, code int, err error) {
	s.errored.Add(1)
	s.registry.Counter("mc3serve_errors_total").Inc()
	writeJSON(w, code, errorResponse{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// buildOptions translates the flag strings into solver options (same
// vocabulary as mc3solve).
func buildOptions(cfg config) (solver.Options, error) {
	opts := solver.DefaultOptions()
	switch cfg.wsc {
	case "auto":
		opts.WSC = solver.WSCAuto
	case "greedy":
		opts.WSC = solver.WSCGreedy
	case "primal-dual":
		opts.WSC = solver.WSCPrimalDual
	case "lp-rounding":
		opts.WSC = solver.WSCLPRounding
	case "auto-lp":
		opts.WSC = solver.WSCAutoLP
	default:
		return opts, fmt.Errorf("unknown -wsc %q", cfg.wsc)
	}
	switch cfg.prep {
	case "full":
		opts.Prep = prep.Full
	case "minimal":
		opts.Prep = prep.Minimal
	default:
		return opts, fmt.Errorf("unknown -prep %q", cfg.prep)
	}
	switch cfg.engine {
	case "dinic":
		opts.Engine = bipartite.Dinic
	case "push-relabel":
		opts.Engine = bipartite.PushRelabel
	case "capacity-scaling":
		opts.Engine = bipartite.CapacityScaling
	default:
		return opts, fmt.Errorf("unknown -engine %q", cfg.engine)
	}
	opts.Parallelism = cfg.parallel
	if cfg.selectorPath != "" {
		model, err := selector.Load(cfg.selectorPath)
		if err != nil {
			return opts, err
		}
		opts.Selector = model
	}
	return opts, nil
}

// checkAlgo validates the -algo flag once at startup (resolution still
// happens per request, since "auto" depends on the instance).
func checkAlgo(name string) error {
	switch name {
	case "auto", "ktwo", "general", "short-first", "portfolio":
		return nil
	}
	return fmt.Errorf("unknown -algo %q", name)
}

// pickAlgorithm resolves the configured algorithm against an instance. The
// "auto" gate mirrors solver.Auto — static k ≤ 2 dispatch, overridable
// toward the general solver by a confident dispatch prediction from a
// loaded selector model — but is unrolled here so the chosen label reaches
// the per-request metrics.
func pickAlgorithm(name string, inst *core.Instance, opts solver.Options) (solver.Func, string) {
	switch name {
	case "ktwo":
		return solver.KTwo, "ktwo"
	case "general":
		return solver.General, "general"
	case "short-first":
		return solver.ShortFirst, "short-first"
	case "portfolio":
		return solver.Portfolio, "portfolio"
	default: // "auto", validated at startup
		if inst.MaxQueryLen() > 2 {
			return solver.General, "general"
		}
		if ds, ok := opts.Selector.(solver.DispatchSelector); ok {
			f := solver.DispatchFeatures{
				Queries:     inst.NumQueries(),
				Classifiers: inst.NumClassifiers(),
				MaxQueryLen: inst.MaxQueryLen(),
				SumQueryLen: inst.SumQueryLen(),
			}
			if algo, _, ok := ds.PredictDispatch(f); ok && algo == solver.AlgoGeneral {
				return solver.General, "general"
			}
		}
		return solver.KTwo, "ktwo"
	}
}
