// Command mc3serve is a long-lived HTTP daemon that answers MC³ solve
// requests. Where mc3solve pays the full solve cost on every invocation, the
// daemon keeps a process-wide component-solution cache (internal/cache), so
// query loads that repeat components — the normal shape of production query
// logs — are answered increasingly from memory. The server itself lives in
// internal/serve; this command is flag parsing, signal handling, and the
// cluster router mode.
//
// Usage:
//
//	mc3serve [-addr :8080] [-algo auto] [-wsc auto] [-prep full]
//	         [-engine dinic] [-parallel -1] [-cache-size 4096]
//	         [-cache-quantum 0] [-request-timeout 30s] [-max-body 8388608]
//	         [-max-sessions 64] [-drain-grace 0]
//
// Router mode (see docs/CLUSTER.md):
//
//	mc3serve -route shard1:8080,shard2:8080 [-addr :8080] [-vnodes 64]
//	         [-hedge-quantile 0] [-hedge-min 2ms] [-retries 3]
//	         [-retry-backoff 5ms] [-retry-budget 0.2] [-probe-interval 500ms]
//	         [-breaker-failures 3] [-bounded-load 0]
//
// With -route the process serves no solves itself: it proxies the same API
// over the listed shards — sessions pinned by consistent hashing, stateless
// solves fanned by payload hash with bounded retries and optional hedging,
// dead shards circuit-broken out of rotation.
//
// API (see docs/SERVING.md and docs/INCREMENTAL.md):
//
//	POST   /solve      — body: instance JSON (the mc3solve/textio format);
//	                     response: {"cost", "classifiers", "queries",
//	                     "seconds", "algorithm", "cache_hit_rate"}.
//	POST   /load       — create an incremental session from an instance.
//	POST   /session/{id}/delta    — apply a delta batch to a session.
//	GET    /session/{id}/solution — a session's current solution.
//	DELETE /session/{id}          — drop a session.
//	GET    /healthz    — liveness probe, "ok".
//	GET    /readyz     — readiness probe: "ready", flipping to 503 the moment
//	                     a shutdown drain starts (routers and load balancers
//	                     stop sending before the listener closes).
//	GET    /stats      — JSON snapshot: uptime, request counters, cache and
//	                     session stats, solve-latency quantiles, scheduler
//	                     counters, flight-recorder counters (in router mode:
//	                     per-shard requests/errors/retries/breaker state and
//	                     latency quantiles).
//	GET    /metrics    — Prometheus text exposition of the process registry.
//	GET    /debug/requests    — flight recorder: recent request traces.
//	GET    /debug/trace/{id}  — one retained trace by request or span ID.
//
// Every solving endpoint propagates X-Request-ID (honored inbound, echoed
// outbound, generated when absent) and runs under a root span retained by an
// in-memory flight recorder (-flight); slow or failed requests are
// additionally appended to -slow-log as JSONL. -feature-log harvests one
// feature record per solved component (docs/OBSERVABILITY.md).
//
// During shutdown drain, new requests are answered 503 with a Retry-After
// header while in-flight requests complete; -drain-grace holds the listener
// open that long after /readyz flips, giving health probers time to notice.
//
// Each request is solved under its own deadline: the request context (client
// disconnect cancels the solve) bounded by -request-timeout. Timeouts answer
// 504, client cancellations 499, malformed or infeasible instances 4xx.
// SIGINT/SIGTERM drain in-flight requests before exit.
//
// Observability: the standard flags (-spans, -log-spans, -cpuprofile,
// -memprofile, -trace, -debug-addr) work as in the other CLIs; /metrics is
// additionally served on the main address so scraping needs no second port.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cache"
	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "mc3serve:", err)
		os.Exit(1)
	}
}

// run parses flags, builds the server (or router), and serves until a
// termination signal arrives; logs go to logw.
func run(args []string, logw io.Writer) (retErr error) {
	fs := flag.NewFlagSet("mc3serve", flag.ContinueOnError)
	cfg := serve.DefaultConfig()
	var (
		addr       = fs.String("addr", ":8080", "listen address")
		slowLog    = fs.String("slow-log", "", "append a JSONL record with the full span tree of every slow or failed request to this file")
		featureLog = fs.String("feature-log", "", "harvest one JSONL feature record per solved component into this file (see docs/OBSERVABILITY.md)")
		drainGrace = fs.Duration("drain-grace", 0, "hold the listener open this long after /readyz flips to 503 on shutdown, so health probers notice before connections refuse")

		// Router mode.
		route          = fs.String("route", "", "comma-separated shard addresses: run as a cluster router instead of a solve server (see docs/CLUSTER.md)")
		vnodes         = fs.Int("vnodes", cluster.DefaultVNodes, "router: virtual nodes per shard on the consistent-hash ring")
		hedgeQuantile  = fs.Float64("hedge-quantile", 0, "router: hedge stateless solves after this observed latency quantile, e.g. 0.95 (0 disables hedging)")
		hedgeMin       = fs.Duration("hedge-min", 2*time.Millisecond, "router: minimum hedge delay")
		retries        = fs.Int("retries", 3, "router: total attempts per idempotent request across replicas")
		retryBackoff   = fs.Duration("retry-backoff", 5*time.Millisecond, "router: initial exponential backoff between retries")
		retryBudget    = fs.Float64("retry-budget", 0.2, "router: sustained retries-per-request ratio allowed")
		probeInterval  = fs.Duration("probe-interval", 500*time.Millisecond, "router: shard /readyz probing period (0 disables)")
		breakerFails   = fs.Int("breaker-failures", 3, "router: consecutive failures opening a shard's circuit breaker")
		boundedLoad    = fs.Float64("bounded-load", 0, "router: bounded-load factor c (skip shards above c x mean in-flight + 1; 0 = strict hashing)")
	)
	fs.StringVar(&cfg.Algo, "algo", cfg.Algo, "algorithm: auto|ktwo|general|short-first|portfolio")
	fs.StringVar(&cfg.WSC, "wsc", cfg.WSC, "Algorithm 3 set-cover engine: auto|greedy|primal-dual|lp-rounding|auto-lp")
	fs.StringVar(&cfg.Prep, "prep", cfg.Prep, "preprocessing level: full|minimal")
	fs.StringVar(&cfg.Engine, "engine", cfg.Engine, "Algorithm 2 max-flow engine: dinic|push-relabel|capacity-scaling")
	fs.IntVar(&cfg.Parallel, "parallel", cfg.Parallel, "components solved concurrently per request: 0 or 1 solves serially, n > 1 uses n workers, -1 (the default) uses GOMAXPROCS")
	fs.IntVar(&cfg.CacheSize, "cache-size", cache.DefaultMaxEntries, "component-solution cache entries (0 disables the cache)")
	fs.Float64Var(&cfg.CacheQuantum, "cache-quantum", 0, "cost quantum for cache keys (0 = exact costs)")
	fs.DurationVar(&cfg.ReqTimeout, "request-timeout", cfg.ReqTimeout, "per-request solve deadline (0 = client-controlled only)")
	fs.Int64Var(&cfg.MaxBody, "max-body", cfg.MaxBody, "maximum request body bytes")
	fs.IntVar(&cfg.MaxLoadQueries, "max-load-queries", cfg.MaxLoadQueries, "reject /load bodies above this many queries with 413 pointing at the mc3solve -stream offline path (0 disables)")
	fs.BoolVar(&cfg.Validate, "validate", cfg.Validate, "verify every solution before answering")
	fs.IntVar(&cfg.MaxSessions, "max-sessions", cfg.MaxSessions, "maximum live incremental sessions")
	fs.IntVar(&cfg.Flight, "flight", cfg.Flight, "span trees retained by the in-memory flight recorder, served at /debug/requests (0 disables)")
	fs.DurationVar(&cfg.SlowThreshold, "slow-threshold", cfg.SlowThreshold, "requests at or above this latency are captured in -slow-log")
	fs.StringVar(&cfg.SelectorPath, "selector", "", "trained selector model (mc3bench -train-selector): skips confident set-cover engine races and informs -algo auto dispatch (see docs/SELECTOR.md)")
	var obsCfg obs.CLIConfig
	obsCfg.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *slowLog != "" && cfg.Flight <= 0 {
		return fmt.Errorf("-slow-log requires the flight recorder (-flight > 0)")
	}
	for _, f := range []struct {
		path string
		dst  *io.Writer
	}{{*slowLog, &cfg.SlowW}, {*featureLog, &cfg.FeatureW}} {
		if f.path == "" {
			continue
		}
		w, err := os.OpenFile(f.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := w.Close(); cerr != nil && retErr == nil {
				retErr = cerr
			}
		}()
		*f.dst = w
	}

	obsCLI, err := obsCfg.Start()
	if err != nil {
		return err
	}
	defer func() {
		if cerr := obsCLI.Close(); cerr != nil && retErr == nil {
			retErr = cerr
		}
	}()

	if *route != "" {
		rcfg := cluster.RouterConfig{
			Shards:          strings.Split(*route, ","),
			VNodes:          *vnodes,
			HedgeQuantile:   *hedgeQuantile,
			HedgeMinDelay:   *hedgeMin,
			MaxAttempts:     *retries,
			RetryBackoff:    *retryBackoff,
			RetryBudget:     *retryBudget,
			ProbeInterval:   *probeInterval,
			BreakerFailures: *breakerFails,
			BoundedLoad:     *boundedLoad,
			MaxBody:         cfg.MaxBody,
			Registry:        obs.NewRegistry(),
			Tracer:          obsCLI.Tracer,
		}
		router, err := cluster.NewRouter(rcfg)
		if err != nil {
			return err
		}
		router.Start()
		defer router.Close()
		banner := fmt.Sprintf("mc3serve: routing %d shard(s): %s", len(rcfg.Shards), *route)
		return serveUntilSignal(logw, *addr, banner, obsCLI.DebugAddr, *drainGrace, router, router.StartDrain, func(w io.Writer) {
			st := router.Stats()
			fmt.Fprintf(w, "mc3serve: routed %d requests (%d errors, %d hedges, %d hedge wins)\n",
				st.Requests, st.Errors, st.Hedges, st.HedgeWins)
		})
	}

	srv, err := serve.New(cfg, obsCLI.Tracer)
	if err != nil {
		return err
	}
	banner := fmt.Sprintf("mc3serve: cache %d entries, timeout %v", cfg.CacheSize, cfg.ReqTimeout)
	return serveUntilSignal(logw, *addr, banner, obsCLI.DebugAddr, *drainGrace, srv, srv.StartDrain, func(w io.Writer) {
		requests, errored := srv.Counts()
		fmt.Fprintf(w, "mc3serve: served %d solves (%d errors), cache hit rate %.1f%%\n",
			requests, errored, 100*srv.CacheStats().HitRate())
	})
}

// serveUntilSignal runs handler on addr until SIGINT/SIGTERM, then drains:
// startDrain flips /readyz (and everything else) to 503, the listener stays
// up for drainGrace so probers notice, and Shutdown waits out in-flight
// requests. finalLog reports lifetime counters on the way out.
func serveUntilSignal(logw io.Writer, addr, banner, debugAddr string, drainGrace time.Duration, handler http.Handler, startDrain func(), finalLog func(io.Writer)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: handler}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	fmt.Fprintf(logw, "mc3serve: listening on http://%s (%s)\n", ln.Addr(), banner)
	if debugAddr != "" {
		fmt.Fprintf(logw, "mc3serve: debug server on http://%s\n", debugAddr)
	}

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(logw, "mc3serve: shutting down, draining in-flight requests")
	startDrain()
	if drainGrace > 0 {
		time.Sleep(drainGrace)
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		return err
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	finalLog(logw)
	return nil
}
