package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/incr"
	"repro/internal/textio"
)

func TestGenSynthetic(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-dataset", "synthetic", "-n", "200", "-seed", "3"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	f, err := textio.Read(&out)
	if err != nil {
		t.Fatalf("generated output is not a valid instance file: %v", err)
	}
	if len(f.Queries) == 0 {
		t.Error("no queries generated")
	}
	if !strings.Contains(errw.String(), "synthetic") {
		t.Error("progress note missing")
	}
}

func TestGenBestBuyShort(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-dataset", "bestbuy", "-short"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	f, err := textio.Read(&out)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range f.Queries {
		if len(q) > 2 {
			t.Fatal("-short output contains a long query")
		}
	}
}

func TestGenPrivateCategory(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-dataset", "private", "-category", "fashion", "-subset", "100"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	f, err := textio.Read(&out)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Queries) == 0 || len(f.Queries) > 100 {
		t.Errorf("subset size = %d", len(f.Queries))
	}
}

func TestGenRoundTripSolvable(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-dataset", "synthetic-k2", "-n", "150", "-seed", "5"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	f, err := textio.Read(&out)
	if err != nil {
		t.Fatal(err)
	}
	_, inst, err := f.Build(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if inst.NumQueries() == 0 {
		t.Error("empty instance")
	}
}

func TestGenErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-dataset", "nope"},
		{"-dataset", "synthetic", "-category", "fashion"},
		{"-dataset", "private", "-category", "nope"},
	} {
		var out bytes.Buffer
		if err := run(args, &out, io.Discard); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}

func TestGenDeltasRoundTrip(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-dataset", "synthetic-k2", "-n", "40", "-seed", "7",
		"-deltas", "-delta-events", "60"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	stream, err := incr.ReadDeltaStream(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatalf("generated stream does not parse back: %v", err)
	}
	if len(stream) != 60 {
		t.Fatalf("parsed %d events, want 60", len(stream))
	}
	var adds, removes, reprices int
	for i, d := range stream {
		if i > 0 && d.Time < stream[i-1].Time {
			t.Fatalf("event %d: time %g before predecessor %g", i, d.Time, stream[i-1].Time)
		}
		switch d.Op {
		case incr.OpAdd:
			adds++
		case incr.OpRemove:
			removes++
		case incr.OpUpdateCost:
			reprices++
			if d.Cost <= 0 {
				t.Fatalf("event %d: re-pricing with cost %g", i, d.Cost)
			}
		}
	}
	if adds == 0 {
		t.Error("stream has no adds")
	}
	if removes+reprices == 0 {
		t.Error("stream has neither removes nor re-pricings")
	}

	// Same seed, same stream: generation must be deterministic.
	var again bytes.Buffer
	if err := run([]string{"-dataset", "synthetic-k2", "-n", "40", "-seed", "7",
		"-deltas", "-delta-events", "60"}, &again, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), again.Bytes()) {
		t.Error("same seed produced a different stream")
	}
}

func TestGenDeltasErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-dataset", "synthetic", "-n", "10", "-deltas", "-delta-events", "0"},
		{"-dataset", "synthetic", "-n", "10", "-deltas", "-delta-rate", "-1"},
	} {
		var out bytes.Buffer
		if err := run(args, &out, io.Discard); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}

func TestGenFromQueryLog(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "q.log")
	if err := os.WriteFile(logPath, []byte("a,b\nb,c\n# comment\nc\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-log", logPath, "-log-cost", "2"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	f, err := textio.Read(&out)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Queries) != 3 {
		t.Errorf("queries = %d, want 3", len(f.Queries))
	}
	if err := run([]string{"-log", "/nonexistent.log"}, &out, io.Discard); err == nil {
		t.Error("missing log file must fail")
	}
}

// TestSessionBundleDeterministic: identical -sessions invocations emit
// byte-identical bundles, different seeds differ, and the bundle parses
// into the requested session count.
func TestSessionBundleDeterministic(t *testing.T) {
	gen := func(seed string) string {
		var out bytes.Buffer
		args := []string{"-dataset", "synthetic", "-n", "60", "-deltas",
			"-delta-events", "80", "-sessions", "3", "-seed", seed}
		if err := run(args, &out, io.Discard); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	a, b := gen("7"), gen("7")
	if a != b {
		t.Fatal("same flags produced different bundles")
	}
	if c := gen("8"); c == a {
		t.Fatal("different seeds produced identical bundles")
	}

	sessions, err := incr.ReadSessionBundle(strings.NewReader(a))
	if err != nil {
		t.Fatalf("generated bundle does not parse: %v", err)
	}
	if len(sessions) != 3 {
		t.Fatalf("bundle has %d sessions, want 3", len(sessions))
	}
	for _, ss := range sessions {
		if len(ss.Deltas) != 80 {
			t.Errorf("session %s has %d deltas, want 80", ss.Name, len(ss.Deltas))
		}
	}
}

func TestSessionsRequiresDeltas(t *testing.T) {
	if err := run([]string{"-dataset", "synthetic", "-sessions", "2"}, io.Discard, io.Discard); err == nil {
		t.Fatal("-sessions without -deltas accepted")
	}
}
