package main

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// TestGenStreamDeterministic: identical flags must produce byte-identical
// query logs (the repeatability contract large-load experiments rely on).
func TestGenStreamDeterministic(t *testing.T) {
	gen := func() string {
		t.Helper()
		var out bytes.Buffer
		if err := run([]string{"-stream", "-queries", "1000", "-partitions", "4", "-seed", "9"}, &out, io.Discard); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	a, b := gen(), gen()
	if a != b {
		t.Fatal("same seed must emit byte-identical streams")
	}
	if lines := strings.Count(a, "\n"); lines != 1000 {
		t.Errorf("emitted %d queries, want 1000", lines)
	}
	for _, line := range strings.SplitN(a, "\n", 4)[:3] {
		if strings.TrimSpace(line) == "" {
			t.Error("empty query line")
		}
	}
}

// TestGenStreamFallsBackToN: -queries 0 falls back to -n.
func TestGenStreamFallsBackToN(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-stream", "-n", "50", "-seed", "2"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(out.String(), "\n"); lines != 50 {
		t.Errorf("emitted %d queries, want 50", lines)
	}
	if !strings.Contains(errw.String(), "50 queries") {
		t.Errorf("progress note missing: %q", errw.String())
	}
}

// TestGenStreamRejectsNonSynthetic: only the synthetic generator streams.
func TestGenStreamRejectsNonSynthetic(t *testing.T) {
	err := run([]string{"-stream", "-dataset", "bestbuy"}, io.Discard, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "synthetic") {
		t.Fatalf("want a -dataset error, got %v", err)
	}
}
