// Command mc3gen generates the paper's datasets (Section 6.1) as MC³
// instance files consumable by mc3solve.
//
// Usage:
//
//	mc3gen -dataset synthetic -n 10000 -seed 1 -out instance.json
//	mc3gen -dataset bestbuy -out bb.json
//	mc3gen -dataset private [-category fashion] [-short] -out p.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/textio"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "mc3gen:", err)
		os.Exit(1)
	}
}

// run executes the tool against args; the instance JSON goes to out (or the
// -out file), progress notes to errw.
func run(args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("mc3gen", flag.ContinueOnError)
	var (
		dataset  = fs.String("dataset", "synthetic", "dataset: synthetic|synthetic-k2|bestbuy|private")
		logPath  = fs.String("log", "", "ingest a plain-text query log instead of generating (one query per line, comma-separated properties)")
		logCost  = fs.Float64("log-cost", 1, "uniform classifier cost for -log ingestion")
		n        = fs.Int("n", 10000, "query count (synthetic datasets)")
		seed     = fs.Int64("seed", 1, "generation seed")
		category = fs.String("category", "", "restrict private dataset to a category: electronics|fashion|home-garden")
		short    = fs.Bool("short", false, "restrict to queries of length ≤ 2")
		subset   = fs.Int("subset", 0, "randomly subsample to this many queries (0 = all)")
		outPath  = fs.String("out", "", "output file (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var d *workload.Dataset
	if *logPath != "" {
		lf, err := os.Open(*logPath)
		if err != nil {
			return err
		}
		d, err = workload.DatasetFromLog("querylog", lf, core.UniformCost(*logCost))
		lf.Close()
		if err != nil {
			return err
		}
		return emit(d, *subset, *seed, *outPath, out, errw)
	}
	switch *dataset {
	case "synthetic":
		d = workload.Synthetic(*n, *seed)
	case "synthetic-k2":
		d = workload.SyntheticShort(*n, *seed)
	case "bestbuy":
		d = workload.BestBuy(*seed)
	case "private":
		d = workload.Private(*seed)
	default:
		return fmt.Errorf("unknown -dataset %q", *dataset)
	}
	if *category != "" {
		if d.Categories == nil {
			return fmt.Errorf("dataset %q has no categories", *dataset)
		}
		d = d.CategorySlice(*category)
		if len(d.Queries) == 0 {
			return fmt.Errorf("unknown -category %q", *category)
		}
	}
	if *short {
		d = d.ShortSlice()
	}

	return emit(d, *subset, *seed, *outPath, out, errw)
}

// emit materializes the dataset (optionally subsampled) and writes the
// instance file.
func emit(d *workload.Dataset, subset int, seed int64, outPath string, out, errw io.Writer) error {
	inst, err := buildInstance(d, subset, seed)
	if err != nil {
		return err
	}

	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if err := textio.Write(out, textio.FromInstance(inst)); err != nil {
		return err
	}
	fmt.Fprintf(errw, "mc3gen: %s — %d queries, %d classifiers, max length %d\n",
		d.Name, inst.NumQueries(), inst.NumClassifiers(), inst.MaxQueryLen())
	return nil
}

func buildInstance(d *workload.Dataset, subset int, seed int64) (*core.Instance, error) {
	if subset > 0 {
		return d.SubsetInstance(subset, seed)
	}
	return d.Instance()
}
