// Command mc3gen generates the paper's datasets (Section 6.1) as MC³
// instance files consumable by mc3solve.
//
// Usage:
//
//	mc3gen -dataset synthetic -n 10000 -seed 1 -out instance.json
//	mc3gen -dataset bestbuy -out bb.json
//	mc3gen -dataset private [-category fashion] [-short] -out p.json
//	mc3gen -stream -queries 10000000 -partitions 64 -seed 1 -out queries.log
//	mc3gen -dataset synthetic -n 200 -deltas -delta-events 500 -out stream.txt
//	mc3gen -dataset synthetic -n 200 -deltas -sessions 4 -out bundle.txt
//
// With -deltas the tool emits a timestamped add/remove/update-cost stream
// (the mc3replay input format, see docs/INCREMENTAL.md) drawn from the
// dataset's queries instead of an instance file. Adding -sessions N emits a
// deterministic multi-session bundle ("# session <name>" markers, see
// internal/incr) — the mc3replay -cluster workload.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"repro/internal/core"
	"repro/internal/incr"
	"repro/internal/textio"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "mc3gen:", err)
		os.Exit(1)
	}
}

// run executes the tool against args; the instance JSON goes to out (or the
// -out file), progress notes to errw.
func run(args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("mc3gen", flag.ContinueOnError)
	var (
		dataset  = fs.String("dataset", "synthetic", "dataset: synthetic|synthetic-k2|bestbuy|private")
		logPath  = fs.String("log", "", "ingest a plain-text query log instead of generating (one query per line, comma-separated properties)")
		logCost  = fs.Float64("log-cost", 1, "uniform classifier cost for -log ingestion")
		n        = fs.Int("n", 10000, "query count (synthetic datasets)")
		seed     = fs.Int64("seed", 1, "generation seed")
		category = fs.String("category", "", "restrict private dataset to a category: electronics|fashion|home-garden")
		short    = fs.Bool("short", false, "restrict to queries of length ≤ 2")
		subset   = fs.Int("subset", 0, "randomly subsample to this many queries (0 = all)")
		outPath  = fs.String("out", "", "output file (default stdout)")

		stream     = fs.Bool("stream", false, "emit a plain-text query log (one query per line) via the streaming generator — no instance materialization, scales to 10M+ queries")
		queries    = fs.Int64("queries", 0, "with -stream: query count (0 falls back to -n)")
		partitions = fs.Int("partitions", 16, "with -stream: number of property-disjoint segments (gives the stream locality so a streamed solve can seal mid-stream; 1 = single pool, exactly the synthetic shape)")

		deltas      = fs.Bool("deltas", false, "emit a timestamped delta stream (mc3replay input) instead of an instance")
		deltaEvents = fs.Int("delta-events", 200, "number of events in the -deltas stream")
		deltaRate   = fs.Float64("delta-rate", 10, "events per second of stream time in the -deltas stream")
		sessions    = fs.Int("sessions", 0, "with -deltas: emit a multi-session bundle with this many independent sessions (mc3replay -cluster input)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *stream {
		if *dataset != "synthetic" {
			return fmt.Errorf("-stream supports only -dataset synthetic")
		}
		nq := *queries
		if nq <= 0 {
			nq = int64(*n)
		}
		return emitStream(nq, *seed, *partitions, *outPath, out, errw)
	}

	var d *workload.Dataset
	if *logPath != "" {
		lf, err := os.Open(*logPath)
		if err != nil {
			return err
		}
		d, err = workload.DatasetFromLog("querylog", lf, core.UniformCost(*logCost))
		lf.Close()
		if err != nil {
			return err
		}
		return emit(d, *subset, *seed, *outPath, out, errw)
	}
	switch *dataset {
	case "synthetic":
		d = workload.Synthetic(*n, *seed)
	case "synthetic-k2":
		d = workload.SyntheticShort(*n, *seed)
	case "bestbuy":
		d = workload.BestBuy(*seed)
	case "private":
		d = workload.Private(*seed)
	default:
		return fmt.Errorf("unknown -dataset %q", *dataset)
	}
	if *category != "" {
		if d.Categories == nil {
			return fmt.Errorf("dataset %q has no categories", *dataset)
		}
		d = d.CategorySlice(*category)
		if len(d.Queries) == 0 {
			return fmt.Errorf("unknown -category %q", *category)
		}
	}
	if *short {
		d = d.ShortSlice()
	}

	if *sessions > 0 && !*deltas {
		return fmt.Errorf("-sessions requires -deltas")
	}
	if *deltas {
		if *sessions > 0 {
			return emitSessionBundle(d, *sessions, *deltaEvents, *deltaRate, *seed, *outPath, out, errw)
		}
		return emitDeltas(d, *deltaEvents, *deltaRate, *seed, *outPath, out, errw)
	}
	return emit(d, *subset, *seed, *outPath, out, errw)
}

// emitStream writes a plain-text query log (the mc3solve -stream /
// ParseQueryLog input format) straight from the streaming synthetic
// generator — queries are never materialized, so 10M+ loads cost only the
// property pool. Deterministic: identical flags yield identical bytes.
func emitStream(n, seed int64, partitions int, outPath string, out, errw io.Writer) error {
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	w := bufio.NewWriterSize(out, 1<<20)
	var emitted int64
	err := workload.SyntheticStream(n, seed, partitions, func(props []string) error {
		for i, p := range props {
			if i > 0 {
				if err := w.WriteByte(','); err != nil {
					return err
				}
			}
			if _, err := w.WriteString(p); err != nil {
				return err
			}
		}
		if err := w.WriteByte('\n'); err != nil {
			return err
		}
		emitted++
		if emitted%1_000_000 == 0 {
			fmt.Fprintf(errw, "mc3gen: streamed %dM/%d queries\n", emitted/1_000_000, n)
		}
		return nil
	})
	if err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(errw, "mc3gen: synthetic stream — %d queries, %d partition(s), seed %d\n", emitted, partitions, seed)
	return nil
}

// deltaStats counts a generated stream's event mix.
type deltaStats struct {
	adds, removes, reprices int
}

// emitDeltas writes a deterministic timestamped delta stream drawn from the
// dataset's query pool: mostly adds (walking the pool, then duplicating),
// mixed with removals of live queries and cost re-pricings of their
// sub-classifiers.
func emitDeltas(d *workload.Dataset, events int, rate float64, seed int64, outPath string, out, errw io.Writer) error {
	stream, st, err := genDeltas(d, events, rate, seed)
	if err != nil {
		return err
	}
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if err := incr.WriteDeltaStream(out, stream); err != nil {
		return err
	}
	fmt.Fprintf(errw, "mc3gen: %s — %d delta events over %.1fs (%d adds, %d removes, %d re-pricings)\n",
		d.Name, len(stream), float64(events-1)/rate, st.adds, st.removes, st.reprices)
	return nil
}

// emitSessionBundle writes a deterministic multi-session bundle: n
// independent delta streams over the same dataset, session i generated with
// seed+i, so the cluster replay harness gets a keyed, replayable workload
// (identical flags → identical bytes; see TestSessionBundleDeterministic).
func emitSessionBundle(d *workload.Dataset, n, events int, rate float64, seed int64, outPath string, out, errw io.Writer) error {
	bundle := make([]incr.SessionStream, 0, n)
	var total deltaStats
	for i := 0; i < n; i++ {
		stream, st, err := genDeltas(d, events, rate, seed+int64(i))
		if err != nil {
			return err
		}
		bundle = append(bundle, incr.SessionStream{Name: fmt.Sprintf("s%d", i+1), Deltas: stream})
		total.adds += st.adds
		total.removes += st.removes
		total.reprices += st.reprices
	}
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if err := incr.WriteSessionBundle(out, bundle); err != nil {
		return err
	}
	fmt.Fprintf(errw, "mc3gen: %s — %d sessions x %d delta events (%d adds, %d removes, %d re-pricings)\n",
		d.Name, n, events, total.adds, total.removes, total.reprices)
	return nil
}

// genDeltas generates one deterministic delta stream (the body shared by
// emitDeltas and emitSessionBundle).
func genDeltas(d *workload.Dataset, events int, rate float64, seed int64) ([]incr.Delta, deltaStats, error) {
	var st deltaStats
	if events <= 0 {
		return nil, st, fmt.Errorf("-delta-events must be positive, got %d", events)
	}
	if rate <= 0 {
		return nil, st, fmt.Errorf("-delta-rate must be positive, got %v", rate)
	}
	if len(d.Queries) == 0 {
		return nil, st, fmt.Errorf("dataset %q has no queries", d.Name)
	}
	rng := rand.New(rand.NewSource(seed))
	names := func(s core.PropSet) []string { return d.Universe.SetNames(s) }

	var (
		stream []incr.Delta
		live   []core.PropSet
		next   int
	)
	for i := 0; i < events; i++ {
		t := float64(i) / rate
		switch r := rng.Float64(); {
		case r < 0.70 || len(live) == 0:
			q := d.Queries[rng.Intn(len(d.Queries))]
			if next < len(d.Queries) {
				q = d.Queries[next]
				next++
			}
			live = append(live, q)
			stream = append(stream, incr.Delta{Time: t, Op: incr.OpAdd, Props: names(q)})
			st.adds++
		case r < 0.90:
			j := rng.Intn(len(live))
			stream = append(stream, incr.Delta{Time: t, Op: incr.OpRemove, Props: names(live[j])})
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
			st.removes++
		default:
			q := live[rng.Intn(len(live))]
			k := rng.Intn(q.Len()) + 1
			sub := make([]string, 0, k)
			for _, j := range rng.Perm(q.Len())[:k] {
				sub = append(sub, d.Universe.Name(q[j]))
			}
			stream = append(stream, incr.Delta{Time: t, Op: incr.OpUpdateCost, Props: sub, Cost: float64(rng.Intn(50) + 1)})
			st.reprices++
		}
	}
	return stream, st, nil
}

// emit materializes the dataset (optionally subsampled) and writes the
// instance file.
func emit(d *workload.Dataset, subset int, seed int64, outPath string, out, errw io.Writer) error {
	inst, err := buildInstance(d, subset, seed)
	if err != nil {
		return err
	}

	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if err := textio.Write(out, textio.FromInstance(inst)); err != nil {
		return err
	}
	fmt.Fprintf(errw, "mc3gen: %s — %d queries, %d classifiers, max length %d\n",
		d.Name, inst.NumQueries(), inst.NumClassifiers(), inst.MaxQueryLen())
	return nil
}

func buildInstance(d *workload.Dataset, subset int, seed int64) (*core.Instance, error) {
	if subset > 0 {
		return d.SubsetInstance(subset, seed)
	}
	return d.Instance()
}
