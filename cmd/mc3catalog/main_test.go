package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestCatalogDefaultRun(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-items", "800", "-queries", "20", "-seed", "7"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"recall before training", "MC3 plan", "recall after training:  1.000"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestCatalogBudgetSweep(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-items", "600", "-queries", "15", "-budget-sweep"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "sweeping budgets") || !strings.Contains(s, "100%") {
		t.Errorf("budget sweep output wrong:\n%s", s)
	}
}

func TestCatalogBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-items", "0"}, &out); err == nil {
		t.Error("zero items must fail")
	}
	if err := run([]string{"-correlation", "3"}, &out); err == nil {
		t.Error("bad correlation must fail")
	}
}
