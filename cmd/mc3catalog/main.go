// Command mc3catalog runs the paper's motivating scenario end to end
// (Section 1) as a simulation: generate a product catalog with hidden
// attribute values, sample a query load, derive classifier costs from
// labeling effort, plan with MC³, train the plan, and report search recall
// before/after — optionally sweeping a training budget with the
// partial-cover heuristic.
//
// Usage:
//
//	mc3catalog -items 5000 -queries 60 -seed 42
//	mc3catalog -items 5000 -queries 60 -budget-sweep
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/solver"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mc3catalog:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mc3catalog", flag.ContinueOnError)
	var (
		items       = fs.Int("items", 5000, "catalog size")
		queries     = fs.Int("queries", 60, "query load size")
		seed        = fs.Int64("seed", 42, "generation seed")
		correlation = fs.Float64("correlation", 0.85, "attribute correlation through product archetypes [0,1]")
		archetypes  = fs.Int("archetypes", 40, "number of product archetypes (0 = independent attributes)")
		budgetSweep = fs.Bool("budget-sweep", false, "sweep training budgets with the partial-cover heuristic")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	attrs := []catalog.Attribute{
		{Name: "type", Values: []string{"shirt", "dress", "jacket", "jeans", "hoodie"}, VisibleRate: 0.95},
		{Name: "color", Values: []string{"white", "black", "red", "blue", "green", "navy"}, VisibleRate: 0.35},
		{Name: "brand", Values: []string{"adidas", "nike", "puma", "umbro", "zara"}, VisibleRate: 0.55},
		{Name: "material", Values: []string{"cotton", "polyester", "denim", "wool"}, VisibleRate: 0.25},
	}
	cat, err := catalog.GenerateCorrelated(*items, attrs, *archetypes, *correlation, *seed)
	if err != nil {
		return err
	}
	rawQueries, err := cat.SampleQueries(*queries, 1, 3, *seed+1)
	if err != nil {
		return err
	}

	u := core.NewUniverse()
	qs := make([]core.PropSet, len(rawQueries))
	for i, q := range rawQueries {
		qs[i] = u.Set(q...)
	}
	cm, err := catalog.NewLabelingCostModel(cat, u, 30, 2, 50)
	if err != nil {
		return err
	}
	inst, err := core.NewInstance(u, qs, cm, core.Options{})
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "catalog: %d items, %d attributes; load: %d queries; %d candidate classifiers\n",
		len(cat.Items), len(attrs), len(rawQueries), inst.NumClassifiers())
	fmt.Fprintf(out, "recall before training: %.3f\n", cat.MacroRecall(rawQueries))

	plan, err := solver.General(inst, solver.DefaultOptions())
	if err != nil {
		return err
	}
	if err := inst.Verify(plan); err != nil {
		return err
	}

	if !*budgetSweep {
		cat.ResetAnnotations()
		for _, id := range plan.Selected {
			cat.ApplyClassifier(u.SetNames(inst.Classifier(id)))
		}
		fmt.Fprintf(out, "MC3 plan: %d classifiers, labeling budget %.0f\n", len(plan.Selected), plan.Cost)
		fmt.Fprintf(out, "recall after training:  %.3f\n", cat.MacroRecall(rawQueries))
		return nil
	}

	weights := make([]float64, inst.NumQueries())
	for i := range weights {
		weights[i] = 1
	}
	fmt.Fprintf(out, "full MC3 cover cost: %.0f — sweeping budgets:\n", plan.Cost)
	fmt.Fprintf(out, "%8s %12s %14s %10s\n", "budget", "spent", "queries-cov", "recall")
	for _, pct := range []int{10, 25, 50, 75, 100} {
		budget := plan.Cost * float64(pct) / 100
		bsol, err := solver.Budgeted(inst, weights, budget, solver.DefaultOptions())
		if err != nil {
			return err
		}
		cat.ResetAnnotations()
		for _, id := range bsol.Selected {
			cat.ApplyClassifier(u.SetNames(inst.Classifier(id)))
		}
		fmt.Fprintf(out, "%7d%% %12.0f %9.0f/%d %10.3f\n",
			pct, bsol.Cost, bsol.CoveredWeight, inst.NumQueries(), cat.MacroRecall(rawQueries))
	}
	return nil
}
