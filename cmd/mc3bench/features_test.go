package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// featureRecord mirrors the harvester's JSONL schema (docs/OBSERVABILITY.md).
type featureRecord struct {
	Kind      string         `json:"kind"`
	Source    string         `json:"source"`
	Algo      string         `json:"algo"`
	Component int64          `json:"component"`
	Queries   int64          `json:"queries"`
	Cache     string         `json:"cache"`
	Nanos     int64          `json:"ns"`
	Params    map[string]any `json:"params"`
	Prep      map[string]any `json:"prep"`
	WSC       *struct {
		Winner string `json:"winner"`
		Runs   []struct {
			Engine string `json:"engine"`
		} `json:"runs"`
	} `json:"wsc"`
	MaxFlow map[string]any `json:"maxflow"`
}

func readFeatures(t *testing.T, path string) []featureRecord {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var recs []featureRecord
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var r featureRecord
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad feature line %q: %v", sc.Text(), err)
		}
		recs = append(recs, r)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return recs
}

// TestBenchFeatureHarvest is the ISSUE acceptance check for the harvester:
// a -quick run over all three workload generators (BestBuy: fig3a/fig3d,
// Private: fig3b, synthetic: fig3c) emits exactly one "component" feature
// record per solved residual component — cross-checked against the
// SolveStats component count in the -json report — and the records carry
// instance parameters, prep counters, and the engine-race winners.
func TestBenchFeatureHarvest(t *testing.T) {
	featPath := filepath.Join(t.TempDir(), "features.jsonl")
	var out bytes.Buffer
	args := []string{"-quick", "-exp", "fig3a,fig3b,fig3c,fig3d", "-json", "-stats", "-features", featPath}
	if err := run(args, &out, io.Discard); err != nil {
		t.Fatal(err)
	}

	var rep struct {
		Stats struct {
			Components int `json:"components"`
			Solves     int `json:"solves"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report not JSON: %v", err)
	}
	if rep.Stats.Solves == 0 || rep.Stats.Components == 0 {
		t.Fatalf("run solved nothing: %+v", rep.Stats)
	}

	recs := readFeatures(t, featPath)
	components := 0
	var sawWSC, sawMaxFlow bool
	for i, r := range recs {
		if r.Kind != "component" {
			t.Fatalf("record %d has kind %q, want component (mc3bench emits no applies)", i, r.Kind)
		}
		if r.Source != "mc3bench" {
			t.Errorf("record %d source = %q", i, r.Source)
		}
		if r.Algo == "" {
			t.Errorf("record %d has no algo label", i)
		}
		if len(r.Params) == 0 {
			t.Errorf("record %d (%s) has no instance params", i, r.Algo)
		}
		if len(r.Prep) == 0 {
			t.Errorf("record %d (%s) has no prep counters", i, r.Algo)
		}
		components++
		if r.WSC != nil {
			sawWSC = true
			if r.WSC.Winner == "" {
				t.Errorf("record %d wsc has no winner", i)
			}
			if len(r.WSC.Runs) == 0 {
				t.Errorf("record %d wsc has no race arms", i)
			}
		}
		if r.MaxFlow != nil {
			sawMaxFlow = true
			if r.MaxFlow["engine"] == "" {
				t.Errorf("record %d maxflow has no engine", i)
			}
		}
	}
	// The invariant the harvest relies on: every residual component counted
	// by SolveStats (from prep spans) is solved under exactly one
	// "component" span, so the record count equals the stats counter.
	if components != rep.Stats.Components {
		t.Errorf("harvested %d component records, SolveStats counted %d components",
			components, rep.Stats.Components)
	}
	if !sawWSC {
		t.Error("no record carries a wsc engine race (fig3d runs the general solver)")
	}
	if !sawMaxFlow {
		t.Error("no record carries a maxflow run (fig3a/b run the k<=2 solver)")
	}
}
