// Command mc3bench regenerates the paper's experimental study (Section 6):
// Table 1, Figures 3a–3f, and the repository's ablations, printing each as
// an aligned text table.
//
// Usage:
//
//	mc3bench                   # full paper-scale suite (minutes)
//	mc3bench -quick            # reduced-scale smoke run (seconds)
//	mc3bench -exp fig3a,fig3d  # selected experiments only
//	mc3bench -exp ablation     # all ablations
//	mc3bench -quick -json      # machine-readable report (BENCH_*.json format)
//
// Observability: -spans traces every solve as JSON lines, -log-spans logs
// spans through log/slog, -cpuprofile/-memprofile/-trace write the standard
// Go profiles, and -debug-addr serves /debug/pprof, /debug/vars, and
// /metrics for the duration of the run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/cache"
	"repro/internal/obs"
	"repro/internal/selector"
	"repro/internal/solver"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "mc3bench:", err)
		os.Exit(1)
	}
}

// run executes the selected experiments, writing tables to out and progress
// to errw.
func run(args []string, out, errw io.Writer) (retErr error) {
	fs := flag.NewFlagSet("mc3bench", flag.ContinueOnError)
	var (
		quick    = fs.Bool("quick", false, "run at reduced scale")
		seed     = fs.Int64("seed", 1, "dataset generation seed")
		exps     = fs.String("exp", "all", "comma-separated experiments: table1,fig3a,fig3b,fig3c,fig3d,fig3e,fig3f,sched,selector,ablation,all")
		repeats  = fs.Int("repeats", 1, "timing repetitions (min reported)")
		format   = fs.String("format", "text", "output format: text|csv|markdown")
		asJSON   = fs.Bool("json", false, "emit one JSON report instead of tables (the BENCH_*.json format; implies -stats data when -stats is set)")
		seeds    = fs.Int("seeds", 1, "run each experiment under this many seeds and report means")
		timeout  = fs.Duration("timeout", 0, "abort any individual solve after this wall time (0 = no limit)")
		stats    = fs.Bool("stats", false, "print accumulated solve statistics after the run")
		useCache = fs.Bool("cache", false, "share one component-solution cache across every solve of the run and report its hit/miss stats")
		features = fs.String("features", "", "harvest one JSONL feature record per solved component into this file (see docs/OBSERVABILITY.md)")
		trainSel = fs.String("train-selector", "", "train a selector model from the -features harvest file (read, not written, in this mode) into this path, print its regret report, and exit without running experiments (see docs/SELECTOR.md)")
		regret   = fs.String("regret", "", "with -train-selector, also write the regret report as JSON to this path")
		selPath  = fs.String("selector", "", "load a trained selector model and let it skip confident set-cover engine races in every solve (see docs/SELECTOR.md)")
		streamN  = fs.Int64("stream", 0, "query count for the streaming experiments (stream-gap/stream-mem; 0 = suite default, 1M full / 50k quick)")
		parts    = fs.Int("partitions", 0, "partition count for the streamed synthetic load (0 = suite default)")
		gaps     = fs.String("gap", "", "comma-separated certified-gap targets for stream-gap (e.g. 0,0.02,0.1; 0 = exact arm)")
		sample   = fs.Int("sample", 0, "initial sample size for sampling-based solves (0 = solver default)")
	)
	var obsCfg obs.CLIConfig
	obsCfg.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *trainSel != "" {
		if *features == "" {
			return fmt.Errorf("-train-selector requires -features naming the harvest JSONL to train from")
		}
		return trainSelector(*features, *trainSel, *regret, out)
	}
	obsCLI, err := obsCfg.Start()
	if err != nil {
		return err
	}
	defer func() {
		if cerr := obsCLI.Close(); cerr != nil && retErr == nil {
			retErr = cerr
		}
	}()
	if obsCLI.DebugAddr != "" {
		fmt.Fprintf(errw, "mc3bench: debug server on http://%s\n", obsCLI.DebugAddr)
	}

	var rep *bench.Report
	if *asJSON {
		rep = &bench.Report{
			Tool: "mc3bench", Generated: time.Now().UTC(),
			Quick: *quick, Seed: *seed, Seeds: *seeds, Repeats: *repeats,
			TimeoutSecs: timeout.Seconds(),
		}
	}
	render := func(tab *bench.Table, elapsed time.Duration) error {
		if rep != nil {
			rep.AddTable(tab, elapsed)
			return nil
		}
		switch *format {
		case "csv":
			fmt.Fprintf(out, "# %s: %s\n", tab.ID, tab.Title)
			return tab.RenderCSV(out)
		case "markdown":
			tab.RenderMarkdown(out)
			return nil
		default:
			tab.Render(out)
			return nil
		}
	}
	if *format != "text" && *format != "csv" && *format != "markdown" {
		return fmt.Errorf("unknown -format %q", *format)
	}

	var cfg bench.Config
	if *quick {
		cfg = bench.Quick(*seed)
	} else {
		cfg = bench.Config{Seed: *seed}.Defaults()
	}
	cfg.Repeats = *repeats
	cfg.Timeout = *timeout
	if *streamN > 0 {
		cfg.StreamQueries = *streamN
	}
	if *parts > 0 {
		cfg.StreamPartitions = *parts
	}
	if *gaps != "" {
		for _, g := range strings.Split(*gaps, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(g), 64)
			if err != nil || v < 0 {
				return fmt.Errorf("invalid -gap value %q", g)
			}
			cfg.GapTargets = append(cfg.GapTargets, v)
		}
	}
	cfg.SampleSize = *sample
	cfg.Tracer = obsCLI.Tracer
	if *stats {
		cfg.Stats = new(solver.SolveStats)
	}
	if *useCache {
		cfg.Cache = cache.New(cache.Config{})
	}
	if *selPath != "" {
		model, err := selector.Load(*selPath)
		if err != nil {
			return err
		}
		cfg.Selector = model
	}
	var harvest *obs.HarvestSink
	if *features != "" {
		f, err := os.Create(*features)
		if err != nil {
			return fmt.Errorf("-features: %w", err)
		}
		defer func() {
			if cerr := f.Close(); cerr != nil && retErr == nil {
				retErr = cerr
			}
		}()
		harvest = obs.NewHarvestSink(f, "mc3bench")
		cfg.Tracer = cfg.Tracer.WithSink(harvest)
		cfg.FeatureAttrs = true
	}

	runners := map[string]func(bench.Config) (*bench.Table, error){
		"table1":   bench.Table1,
		"fig3a":    bench.Figure3a,
		"fig3b":    bench.Figure3b,
		"fig3c":    bench.Figure3c,
		"fig3d":    bench.Figure3d,
		"fig3e":    bench.Figure3e,
		"fig3f":    bench.Figure3f,
		"sched":      bench.ParallelScaling,
		"selector":   bench.SelectorBench,
		"stream-gap": bench.StreamGap,
		"stream-mem": bench.StreamMem,
	}
	order := []string{"table1", "fig3a", "fig3b", "fig3c", "fig3d", "fig3e", "fig3f", "sched", "selector"}

	var selected []string
	wantAblation := false
	for _, e := range strings.Split(*exps, ",") {
		e = strings.TrimSpace(e)
		switch e {
		case "", "all":
			selected = append(selected, order...)
			wantAblation = true
		case "ablation", "ablations":
			wantAblation = true
		case "stream":
			// The streaming experiments run at ≥1M queries by default, so
			// they are opt-in rather than part of "all".
			selected = append(selected, "stream-gap", "stream-mem")
		default:
			if _, ok := runners[e]; !ok {
				return fmt.Errorf("unknown experiment %q", e)
			}
			selected = append(selected, e)
		}
	}

	seen := map[string]bool{}
	start := time.Now()
	var mem *bench.MemCapture
	if rep != nil {
		mem = bench.StartMemCapture()
	}
	for _, name := range selected {
		if seen[name] {
			continue
		}
		seen[name] = true
		t0 := time.Now()
		var tab *bench.Table
		var err error
		if *seeds > 1 {
			seedList := make([]int64, *seeds)
			for i := range seedList {
				seedList[i] = cfg.Seed + int64(i)
			}
			tab, err = bench.Aggregate(runners[name], cfg, seedList)
		} else {
			tab, err = runners[name](cfg)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if err := render(tab, time.Since(t0)); err != nil {
			return err
		}
		fmt.Fprintf(errw, "mc3bench: %s done in %v\n", name, time.Since(t0).Round(time.Millisecond))
	}
	if wantAblation {
		t0 := time.Now()
		tabs, err := bench.Ablations(cfg)
		if err != nil {
			return fmt.Errorf("ablations: %w", err)
		}
		elapsed := time.Since(t0)
		for _, tab := range tabs {
			if err := render(tab, elapsed/time.Duration(len(tabs))); err != nil {
				return err
			}
		}
	}
	if rep != nil {
		rep.TotalSeconds = time.Since(start).Seconds()
		rep.Stats = cfg.Stats
		rep.Mem = mem.Report()
		if cfg.Cache != nil {
			st := cfg.Cache.Stats()
			rep.Cache = &st
		}
		if err := rep.Write(out); err != nil {
			return err
		}
	} else {
		if cfg.Stats != nil {
			fmt.Fprintln(out, "== solve stats (accumulated across the run) ==")
			cfg.Stats.Render(out)
		}
		if cfg.Cache != nil {
			st := cfg.Cache.Stats()
			fmt.Fprintf(out, "component cache: %d hits / %d misses (%.1f%% hit rate), %d entries, %d evictions\n",
				st.Hits, st.Misses, 100*st.HitRate(), st.Entries, st.Evictions)
		}
	}
	if harvest != nil {
		fmt.Fprintf(errw, "mc3bench: %d feature records -> %s (%d dropped)\n",
			harvest.Records(), *features, harvest.Dropped())
	}
	fmt.Fprintf(errw, "mc3bench: total %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// trainSelector implements -train-selector: read a harvest, fit a model,
// write it, and print (and optionally persist) the regret report.
func trainSelector(featuresPath, modelPath, regretPath string, out io.Writer) error {
	f, err := os.Open(featuresPath)
	if err != nil {
		return fmt.Errorf("-features: %w", err)
	}
	defer f.Close()
	comps, _, err := obs.ReadHarvestRecords(f)
	if err != nil {
		return err
	}
	model, report, err := selector.Train(comps, selector.DefaultTrainConfig())
	if err != nil {
		return err
	}
	if err := model.Save(modelPath); err != nil {
		return err
	}
	fmt.Fprint(out, report.Render())
	fmt.Fprintf(out, "selector: model -> %s\n", modelPath)
	if regretPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(regretPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "selector: regret report -> %s\n", regretPath)
	}
	return nil
}
