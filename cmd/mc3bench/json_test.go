package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// benchSpan mirrors the obs.JSONLSink line format.
type benchSpan struct {
	Name   string         `json:"name"`
	ID     uint64         `json:"id"`
	Parent uint64         `json:"parent"`
	Nanos  int64          `json:"ns"`
	Attrs  map[string]any `json:"attrs"`
}

func readSpans(t *testing.T, path string) []benchSpan {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var spans []benchSpan
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var sp benchSpan
		if err := json.Unmarshal(sc.Bytes(), &sp); err != nil {
			t.Fatalf("bad span line %q: %v", sc.Text(), err)
		}
		spans = append(spans, sp)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return spans
}

// TestBenchJSONReportMatchesSpans is the ISSUE acceptance check: a -quick run
// with a JSONL trace sink produces solve spans whose durations sum (within
// tolerance) to the SolveStats totals embedded in the -json report — the two
// outputs are views of the same trace.
func TestBenchJSONReportMatchesSpans(t *testing.T) {
	spanPath := filepath.Join(t.TempDir(), "spans.jsonl")
	var out bytes.Buffer
	if err := run([]string{"-quick", "-exp", "fig3a", "-json", "-stats", "-spans", spanPath}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}

	var rep struct {
		Tool         string  `json:"tool"`
		Quick        bool    `json:"quick"`
		TotalSeconds float64 `json:"total_seconds"`
		Experiments  []struct {
			ID      string  `json:"id"`
			Seconds float64 `json:"seconds"`
			Series  []struct {
				Name   string     `json:"name"`
				Values []*float64 `json:"values"`
			} `json:"series"`
		} `json:"experiments"`
		Stats *struct {
			Algorithm    string  `json:"algorithm"`
			Solves       int     `json:"solves"`
			PrepSeconds  float64 `json:"prep_seconds"`
			SolveSeconds float64 `json:"solve_seconds"`
			TotalSeconds float64 `json:"total_seconds"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, out.String())
	}
	if rep.Tool != "mc3bench" || !rep.Quick {
		t.Errorf("report header = %+v", rep)
	}
	if len(rep.Experiments) != 1 || rep.Experiments[0].ID != "fig3a" {
		t.Fatalf("experiments = %+v", rep.Experiments)
	}
	if len(rep.Experiments[0].Series) == 0 {
		t.Fatal("fig3a has no series")
	}
	if rep.Stats == nil {
		t.Fatal("-stats set but report carries no stats")
	}
	if rep.Stats.Solves == 0 || rep.Stats.TotalSeconds <= 0 {
		t.Errorf("stats = %+v", rep.Stats)
	}

	spans := readSpans(t, spanPath)
	if len(spans) == 0 {
		t.Fatal("no spans written")
	}
	var solveSecs, prepSecs float64
	solves := 0
	ids := map[uint64]bool{}
	for _, sp := range spans {
		if ids[sp.ID] {
			t.Errorf("duplicate span id %d", sp.ID)
		}
		ids[sp.ID] = true
		switch sp.Name {
		case "solve":
			solves++
			solveSecs += time.Duration(sp.Nanos).Seconds()
		case "prep":
			prepSecs += time.Duration(sp.Nanos).Seconds()
		}
	}
	// Spans appear in end order, so every non-root parent must already be
	// known by the end of the file.
	for _, sp := range spans {
		if sp.Parent != 0 && !ids[sp.Parent] {
			t.Errorf("span %d (%s) has unknown parent %d", sp.ID, sp.Name, sp.Parent)
		}
	}

	if solves != rep.Stats.Solves {
		t.Errorf("spans show %d solves, report says %d", solves, rep.Stats.Solves)
	}
	// Stats are populated from the same events the JSONL sink saw, so the
	// sums agree to rounding; allow 1%% + 1ms of slack.
	tol := func(a, b float64) bool { return math.Abs(a-b) <= 0.01*math.Max(a, b)+0.001 }
	if !tol(solveSecs, rep.Stats.TotalSeconds) {
		t.Errorf("solve spans sum to %.6fs, stats total %.6fs", solveSecs, rep.Stats.TotalSeconds)
	}
	if !tol(prepSecs, rep.Stats.PrepSeconds) {
		t.Errorf("prep spans sum to %.6fs, stats prep %.6fs", prepSecs, rep.Stats.PrepSeconds)
	}
	if !tol(rep.Stats.PrepSeconds+rep.Stats.SolveSeconds, rep.Stats.TotalSeconds) {
		t.Errorf("prep %.6f + solve %.6f != total %.6f",
			rep.Stats.PrepSeconds, rep.Stats.SolveSeconds, rep.Stats.TotalSeconds)
	}
}

// TestBenchJSONHandlesNaN checks table1 (whose table carries NaN "not
// applicable" cells) still marshals, rendering them as null.
func TestBenchJSONHandlesNaN(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-quick", "-exp", "table1", "-json"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("table1 report is not JSON: %v", err)
	}
	if doc["stats"] != nil {
		t.Error("stats present without -stats")
	}
}
