package main

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestBenchQuickSingleExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-quick", "-exp", "table1"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"table1", "bestbuy", "private", "synthetic"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestBenchMultipleExperiments(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-quick", "-exp", "fig3a,fig3b"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "fig3a") || !strings.Contains(s, "fig3b") {
		t.Error("selected experiments missing from output")
	}
	if strings.Contains(s, "fig3c") {
		t.Error("unselected experiment present")
	}
}

func TestBenchUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "nope"}, &out, io.Discard); err == nil {
		t.Error("unknown experiment must fail")
	}
}

func TestBenchDedupSelection(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-quick", "-exp", "table1,table1"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if strings.Count(out.String(), "== table1") != 1 {
		t.Error("duplicate experiment selection must run once")
	}
}

func TestBenchCSVFormat(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-quick", "-exp", "table1", "-format", "csv"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "dataset,queries,max-cost") {
		t.Errorf("CSV header missing:\n%s", s)
	}
	if !strings.Contains(s, "bestbuy,1000,1") {
		t.Errorf("CSV row missing:\n%s", s)
	}
	if err := run([]string{"-format", "nope"}, &out, io.Discard); err == nil {
		t.Error("unknown format must fail")
	}
}

func TestBenchMultiSeed(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-quick", "-exp", "fig3a", "-seeds", "2"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "mean of 2 seeds") {
		t.Errorf("multi-seed title missing:\n%s", out.String())
	}
}
