package main

import (
	"encoding/json"
	"io"
	"math"
	"time"

	"repro/internal/bench"
	"repro/internal/cache"
	"repro/internal/solver"
)

// report is the -json output document — the BENCH_*.json format the
// repository uses to record performance trajectories across commits: run
// parameters, per-experiment tables with wall times, and (with -stats) the
// accumulated solver statistics.
type report struct {
	Tool         string             `json:"tool"`
	Generated    time.Time          `json:"generated"`
	Quick        bool               `json:"quick"`
	Seed         int64              `json:"seed"`
	Seeds        int                `json:"seeds"`
	Repeats      int                `json:"repeats"`
	TimeoutSecs  float64            `json:"timeout_seconds,omitempty"`
	Experiments  []reportExperiment `json:"experiments"`
	TotalSeconds float64            `json:"total_seconds"`
	Stats        *solver.SolveStats `json:"stats,omitempty"`
	// Cache reports the shared component-solution cache's counters when the
	// run was invoked with -cache: the amortization record for BENCH_*.json.
	Cache *cache.Stats `json:"cache,omitempty"`
}

// reportExperiment is one experiment's table plus its wall time.
type reportExperiment struct {
	ID      string         `json:"id"`
	Title   string         `json:"title"`
	XLabel  string         `json:"xlabel"`
	X       []string       `json:"x"`
	Unit    string         `json:"unit,omitempty"`
	Series  []reportSeries `json:"series"`
	Seconds float64        `json:"seconds"`
	Notes   string         `json:"notes,omitempty"`
}

// reportSeries is one labelled column of values.
type reportSeries struct {
	Name   string      `json:"name"`
	Values []jsonFloat `json:"values"`
}

// jsonFloat marshals NaN and ±Inf (bench's "not applicable" markers) as
// null, which encoding/json rejects for plain float64.
type jsonFloat float64

// MarshalJSON implements json.Marshaler.
func (f jsonFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return []byte("null"), nil
	}
	return json.Marshal(v)
}

// addTable appends tab to the report.
func (r *report) addTable(tab *bench.Table, elapsed time.Duration) {
	exp := reportExperiment{
		ID:      tab.ID,
		Title:   tab.Title,
		XLabel:  tab.XLabel,
		X:       tab.XValues,
		Unit:    tab.Unit,
		Seconds: elapsed.Seconds(),
		Notes:   tab.Notes,
	}
	for _, s := range tab.Series {
		vals := make([]jsonFloat, len(s.Values))
		for i, v := range s.Values {
			vals[i] = jsonFloat(v)
		}
		exp.Series = append(exp.Series, reportSeries{Name: s.Name, Values: vals})
	}
	r.Experiments = append(r.Experiments, exp)
}

// write renders the report as indented JSON.
func (r *report) write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
