package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const exampleJSON = `{
  "queries": [
    ["team:juventus", "color:white", "brand:adidas"],
    ["team:chelsea", "brand:adidas"]
  ],
  "costs": {
    "team:chelsea": 5, "brand:adidas": 5, "team:juventus": 5, "color:white": 1,
    "brand:adidas|team:chelsea": 3, "brand:adidas|color:white": 5,
    "brand:adidas|team:juventus": 3, "color:white|team:juventus": 4,
    "brand:adidas|color:white|team:juventus": 5
  }
}`

func writeExample(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "inst.json")
	if err := os.WriteFile(path, []byte(exampleJSON), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSolveQuiet(t *testing.T) {
	path := writeExample(t)
	var out bytes.Buffer
	if err := run([]string{"-in", path, "-quiet"}, &out); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(out.String()); got != "7" {
		t.Errorf("quiet output = %q, want 7 (the paper's optimum)", got)
	}
}

func TestSolveVerbose(t *testing.T) {
	path := writeExample(t)
	var out bytes.Buffer
	if err := run([]string{"-in", path, "-algo", "exact"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"2 queries", "total construction cost: 7", "classifiers selected: 3"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestSolveAllAlgorithms(t *testing.T) {
	path := writeExample(t)
	for _, algo := range []string{"auto", "general", "short-first", "exact", "local-greedy", "property-oriented", "query-oriented"} {
		var out bytes.Buffer
		if err := run([]string{"-in", path, "-algo", algo, "-quiet"}, &out); err != nil {
			t.Errorf("algo %s: %v", algo, err)
		}
	}
	// ktwo and mixed must reject the k=3 instance.
	for _, algo := range []string{"ktwo", "mixed"} {
		var out bytes.Buffer
		if err := run([]string{"-in", path, "-algo", algo}, &out); err == nil {
			t.Errorf("algo %s must reject a k=3 instance", algo)
		}
	}
}

func TestSolveOptionCombinations(t *testing.T) {
	path := writeExample(t)
	for _, args := range [][]string{
		{"-in", path, "-wsc", "greedy", "-quiet"},
		{"-in", path, "-wsc", "primal-dual", "-quiet"},
		{"-in", path, "-wsc", "lp-rounding", "-quiet"},
		{"-in", path, "-wsc", "auto-lp", "-quiet"},
		{"-in", path, "-prep", "minimal", "-quiet"},
		{"-in", path, "-parallel", "4", "-quiet"},
	} {
		var out bytes.Buffer
		if err := run(args, &out); err != nil {
			t.Errorf("%v: %v", args, err)
		}
	}
}

func TestSolveErrors(t *testing.T) {
	path := writeExample(t)
	for _, args := range [][]string{
		{},
		{"-in", "/nonexistent/file.json"},
		{"-in", path, "-algo", "nope"},
		{"-in", path, "-wsc", "nope"},
		{"-in", path, "-prep", "nope"},
		{"-in", path, "-engine", "nope"},
	} {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}

func TestSolveBadJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("{"), 0o600); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-in", path}, &out); err == nil {
		t.Error("malformed JSON must fail")
	}
}

func TestSolveJSONOutput(t *testing.T) {
	path := writeExample(t)
	var out bytes.Buffer
	if err := run([]string{"-in", path, "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Cost        float64    `json:"cost"`
		Classifiers [][]string `json:"classifiers"`
		Queries     int        `json:"queries"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, out.String())
	}
	if doc.Cost != 7 || doc.Queries != 2 || len(doc.Classifiers) != 3 {
		t.Errorf("JSON doc = %+v", doc)
	}
}

func TestSolveAnalyze(t *testing.T) {
	path := writeExample(t)
	var out bytes.Buffer
	if err := run([]string{"-in", path, "-analyze"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"queries: 2", "incidence I = 2", "guarantee", "preprocessing:", "components"} {
		if !strings.Contains(s, want) {
			t.Errorf("analyze output missing %q:\n%s", want, s)
		}
	}
}

func TestSolveBudgetedCLI(t *testing.T) {
	path := writeExample(t)
	var out bytes.Buffer
	if err := run([]string{"-in", path, "-budget", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	// Budget 3 affords only AC → 1 of 2 queries.
	if !strings.Contains(s, "covered 1/2 queries") {
		t.Errorf("budgeted output wrong:\n%s", s)
	}
	out.Reset()
	if err := run([]string{"-in", path, "-budget", "100"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "covered 2/2 queries") {
		t.Errorf("generous budget must cover all:\n%s", out.String())
	}
}

func TestSolveExplain(t *testing.T) {
	path := writeExample(t)
	var out bytes.Buffer
	if err := run([]string{"-in", path, "-algo", "exact", "-explain"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "is answered by") {
		t.Errorf("explain output missing:\n%s", out.String())
	}
}
