package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSolveWithSpans runs a solve with the JSONL trace sink and checks the
// span file holds a well-formed trace: a solve root with prep under it.
func TestSolveWithSpans(t *testing.T) {
	path := writeExample(t)
	spanPath := filepath.Join(t.TempDir(), "spans.jsonl")
	var out bytes.Buffer
	if err := run([]string{"-in", path, "-algo", "general", "-quiet", "-spans", spanPath, "-stats"}, &out); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(spanPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	type span struct {
		Name   string `json:"name"`
		ID     uint64 `json:"id"`
		Parent uint64 `json:"parent"`
		Nanos  int64  `json:"ns"`
	}
	byName := map[string][]span{}
	ids := map[uint64]span{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var sp span
		if err := json.Unmarshal(sc.Bytes(), &sp); err != nil {
			t.Fatalf("bad span line %q: %v", sc.Text(), err)
		}
		byName[sp.Name] = append(byName[sp.Name], sp)
		ids[sp.ID] = sp
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	solves := byName["solve"]
	if len(solves) != 1 {
		t.Fatalf("got %d solve spans, want 1 (trace: %v)", len(solves), byName)
	}
	if solves[0].Parent != 0 {
		t.Errorf("solve span has parent %d, want root", solves[0].Parent)
	}
	preps := byName["prep"]
	if len(preps) != 1 {
		t.Fatalf("got %d prep spans, want 1", len(preps))
	}
	if preps[0].Parent != solves[0].ID {
		t.Errorf("prep parent = %d, want solve id %d", preps[0].Parent, solves[0].ID)
	}
	if len(byName["prep.step"]) == 0 {
		t.Error("no prep.step spans")
	}
	for name, spans := range byName {
		for _, sp := range spans {
			if sp.Nanos < 0 {
				t.Errorf("%s span %d has negative duration", name, sp.ID)
			}
			if sp.Parent != 0 {
				if _, ok := ids[sp.Parent]; !ok {
					t.Errorf("%s span %d has unknown parent %d", name, sp.ID, sp.Parent)
				}
			}
		}
	}
}

// TestSolveWithDebugServer checks -debug-addr boots and shuts down cleanly
// around a solve.
func TestSolveWithDebugServer(t *testing.T) {
	path := writeExample(t)
	var out bytes.Buffer
	if err := run([]string{"-in", path, "-quiet", "-debug-addr", "localhost:0"}, &out); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(out.String()); got != "7" {
		t.Errorf("quiet output = %q, want 7", got)
	}
}

// TestSolveWithProfiles checks the pprof flags produce non-empty profiles.
func TestSolveWithProfiles(t *testing.T) {
	path := writeExample(t)
	dir := t.TempDir()
	cpu, mem, tr := filepath.Join(dir, "cpu.prof"), filepath.Join(dir, "mem.prof"), filepath.Join(dir, "trace.out")
	var out bytes.Buffer
	if err := run([]string{"-in", path, "-quiet", "-cpuprofile", cpu, "-memprofile", mem, "-trace", tr}, &out); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem, tr} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Errorf("%s not written: %v", p, err)
			continue
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
	// An unwritable profile path must surface as an error.
	if err := run([]string{"-in", path, "-quiet", "-cpuprofile", filepath.Join(dir, "no/such/dir/x.prof")}, &out); err == nil {
		t.Error("unwritable -cpuprofile must fail")
	}
}
