// Command mc3solve solves an MC³ instance file with a chosen algorithm and
// reports the selected classifiers, total construction cost, and timing.
//
// Usage:
//
//	mc3solve -in instance.json [-algo auto] [-wsc auto] [-prep full] [-quiet]
//	         [-timeout 500ms] [-stats]
//
// Algorithms: auto (exact for k ≤ 2, Algorithm 3 otherwise), ktwo, general,
// short-first, exact, mixed, property-oriented, query-oriented, local-greedy.
//
// Observability: -spans traces the solve as JSON lines, -log-spans logs
// spans through log/slog, -cpuprofile/-memprofile/-trace write the standard
// Go profiles, and -debug-addr serves /debug/pprof, /debug/vars, and
// /metrics for the duration of the run.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/prep"
	"repro/internal/selector"
	"repro/internal/solver"
	"repro/internal/textio"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mc3solve:", err)
		os.Exit(1)
	}
}

// run executes the tool against args, writing results to out.
func run(args []string, out io.Writer) (retErr error) {
	fs := flag.NewFlagSet("mc3solve", flag.ContinueOnError)
	var (
		inPath   = fs.String("in", "", "instance JSON file (this or -stream is required)")
		streamIn = fs.String("stream", "", "plain-text query log to solve streamed: queries are ingested one at a time and components solved as they seal, never materializing the whole load (see docs/STREAMING.md)")
		costSpec = fs.String("cost", "uniform:1", "classifier cost model for -stream: uniform:C or synthetic:SEED")
		sealWin  = fs.Int64("seal-window", 0, "with -stream: seal a component after this many queries without growth and solve it while ingestion continues (0 = seal only at end of stream)")
		ambient  = fs.Int("ambient", 0, "with -stream: declared max query length of the whole load (0 = derive, assuming a long load when -seal-window is set)")
		reopen   = fs.Bool("allow-reopen", false, "with -stream: accept queries whose properties reappear after sealing (upper-bound cover instead of an error)")
		gap      = fs.Float64("gap", 0, "target certified optimality gap for sampling-based component solves (0 = exact; e.g. 0.05 accepts covers proven within 5% of optimal)")
		sample   = fs.Int("sample", 0, "initial sample size for -gap solves (0 = default)")
		algo     = fs.String("algo", "auto", "algorithm: auto|ktwo|general|short-first|exact|mixed|property-oriented|query-oriented|local-greedy")
		wsc      = fs.String("wsc", "auto", "Algorithm 3 set-cover engine: auto|greedy|primal-dual|lp-rounding|auto-lp")
		prepStr  = fs.String("prep", "full", "preprocessing level: full|minimal")
		engine   = fs.String("engine", "dinic", "Algorithm 2 max-flow engine: dinic|push-relabel|capacity-scaling")
		parallel = fs.Int("parallel", 0, "components solved concurrently (0/1 serial, -1 = GOMAXPROCS)")
		quiet    = fs.Bool("quiet", false, "print only the total cost")
		asJSON   = fs.Bool("json", false, "emit the solution as JSON")
		analyze  = fs.Bool("analyze", false, "print instance analysis and preprocessing report instead of solving")
		budget   = fs.Float64("budget", -1, "solve the budgeted partial-cover variant with this construction budget (uses the file's query weights; default full cover)")
		explain  = fs.Bool("explain", false, "print, per query, the classifiers assigned to answer it")
		timeout  = fs.Duration("timeout", 0, "abort the solve after this wall time (e.g. 500ms, 2s; 0 = no limit)")
		stats    = fs.Bool("stats", false, "print solve statistics (phase timings, components, engine choices)")
		selPath  = fs.String("selector", "", "trained selector model (mc3bench -train-selector): skips confident set-cover engine races and informs -algo auto dispatch (see docs/SELECTOR.md)")
	)
	var obsCfg obs.CLIConfig
	obsCfg.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *inPath == "" && *streamIn == "" {
		return errors.New("-in or -stream is required")
	}
	if *inPath != "" && *streamIn != "" {
		return errors.New("-in and -stream are mutually exclusive")
	}
	obsCLI, err := obsCfg.Start()
	if err != nil {
		return err
	}
	defer func() {
		if cerr := obsCLI.Close(); cerr != nil && retErr == nil {
			retErr = cerr
		}
	}()
	if obsCLI.DebugAddr != "" {
		fmt.Fprintf(os.Stderr, "mc3solve: debug server on http://%s\n", obsCLI.DebugAddr)
	}

	opts, err := buildOptions(*wsc, *prepStr, *engine)
	if err != nil {
		return err
	}
	opts.Parallelism = *parallel
	opts.Validate = true
	opts.Timeout = *timeout
	opts.Tracer = obsCLI.Tracer
	if *selPath != "" {
		model, err := selector.Load(*selPath)
		if err != nil {
			return err
		}
		opts.Selector = model
	}
	if *gap < 0 {
		return fmt.Errorf("-gap must be ≥ 0, got %v", *gap)
	}
	if *gap > 0 {
		opts.Sampling = &solver.SamplingConfig{Gap: *gap, SampleSize: *sample}
	}
	var solveStats *solver.SolveStats
	if *stats {
		solveStats = new(solver.SolveStats)
		opts.Stats = solveStats
	}

	if *streamIn != "" {
		return solveStreamed(out, *streamIn, *costSpec, solver.StreamConfig{
			SealWindow:      *sealWin,
			AmbientQueryLen: *ambient,
			AllowReopen:     *reopen,
			Parallelism:     *parallel,
		}, opts, *quiet, solveStats)
	}

	f, err := os.Open(*inPath)
	if err != nil {
		return err
	}
	file, err := textio.Read(f)
	f.Close()
	if err != nil {
		return err
	}
	_, inst, err := file.Build(core.Options{})
	if err != nil {
		return err
	}

	if *analyze {
		return analyzeInstance(out, inst)
	}
	if *budget >= 0 {
		return solveBudgeted(out, file, inst, *budget, opts)
	}

	fn, err := pickAlgorithm(*algo, inst)
	if err != nil {
		return err
	}

	start := time.Now()
	sol, err := fn(inst, opts)
	elapsed := time.Since(start)
	if err != nil {
		if solveStats != nil {
			fmt.Fprint(out, solveStats)
		}
		return err
	}

	if *quiet {
		fmt.Fprintln(out, sol.Cost)
		return nil
	}
	if *asJSON {
		return writeJSONSolution(out, inst, sol, elapsed)
	}
	fmt.Fprintf(out, "instance: %d queries, %d classifiers, max query length %d\n",
		inst.NumQueries(), inst.NumClassifiers(), inst.MaxQueryLen())
	fmt.Fprintf(out, "algorithm: %s  (prep=%s, wsc=%s, engine=%s)\n", *algo, *prepStr, *wsc, *engine)
	fmt.Fprintf(out, "total construction cost: %g\n", sol.Cost)
	fmt.Fprintf(out, "classifiers selected: %d\n", len(sol.Selected))
	fmt.Fprintf(out, "time: %v\n", elapsed)
	for _, names := range textio.SolutionNames(inst, sol) {
		fmt.Fprintf(out, "  %v\n", names)
	}
	if *explain {
		ex, err := solver.Explain(inst, sol)
		if err != nil {
			return err
		}
		fmt.Fprintln(out)
		ex.Render(out, inst)
	}
	if solveStats != nil {
		fmt.Fprintln(out)
		fmt.Fprintln(out, "solve stats:")
		solveStats.Render(out)
	}
	return nil
}

// solveStreamed solves a plain-text query log through the streaming path:
// the load is never materialized as an Instance — queries feed a
// core.StreamingBuilder and components are solved as they seal. Progress
// goes to stderr every million queries.
func solveStreamed(out io.Writer, logPath, costSpec string, cfg solver.StreamConfig, opts solver.Options, quiet bool, solveStats *solver.SolveStats) error {
	cm, err := workload.ParseCostModel(costSpec)
	if err != nil {
		return err
	}
	f, err := os.Open(logPath)
	if err != nil {
		return err
	}
	defer f.Close()

	u := core.NewUniverse()
	cfg.Progress = func(st core.StreamStats) {
		fmt.Fprintf(os.Stderr, "mc3solve: streamed %d queries (%d live, %d component(s) sealed)\n",
			st.Added, st.LiveQueries, st.SealedComponents)
	}
	start := time.Now()
	res, err := solver.SolveStream(u, cm, func(add func(core.PropSet) error) error {
		return workload.ParseQueryLogFunc(f, u, add)
	}, cfg, opts)
	elapsed := time.Since(start)
	if err != nil {
		if solveStats != nil {
			fmt.Fprint(out, solveStats)
		}
		return err
	}

	if quiet {
		fmt.Fprintln(out, res.Cost)
		return nil
	}
	fmt.Fprintf(out, "stream: %d queries (%d distinct), %d component(s), max query length %d\n",
		res.Queries, res.Distinct, res.Components, res.MaxQueryLen)
	fmt.Fprintf(out, "peak live queries: %d\n", res.PeakLiveQueries)
	fmt.Fprintf(out, "total construction cost: %g\n", res.Cost)
	fmt.Fprintf(out, "classifiers selected: %d\n", len(res.Classifiers))
	if res.SampledComponents > 0 {
		fmt.Fprintf(out, "sampling: %d component(s), %d escalated, reported gap %.4f\n",
			res.SampledComponents, res.SamplingEscalations, res.Gap)
	}
	fmt.Fprintf(out, "time: %v\n", elapsed)
	if solveStats != nil {
		fmt.Fprintln(out)
		fmt.Fprintln(out, "solve stats:")
		solveStats.Render(out)
	}
	return nil
}

// solveBudgeted runs the partial-cover heuristic under the given budget.
func solveBudgeted(out io.Writer, file *textio.File, inst *core.Instance, budget float64, opts solver.Options) error {
	weights := file.QueryWeights()
	start := time.Now()
	sol, err := solver.Budgeted(inst, weights, budget, opts)
	if err != nil {
		return err
	}
	var total float64
	for _, w := range weights {
		total += w
	}
	covered := 0
	for _, c := range sol.Covered {
		if c {
			covered++
		}
	}
	fmt.Fprintf(out, "budget %g: spent %g on %d classifiers\n", budget, sol.Cost, len(sol.Selected))
	fmt.Fprintf(out, "covered %d/%d queries, weight %g/%g\n", covered, inst.NumQueries(), sol.CoveredWeight, total)
	fmt.Fprintf(out, "time: %v\n", time.Since(start))
	for _, names := range textio.SolutionNames(inst, &core.Solution{Selected: sol.Selected, Cost: sol.Cost}) {
		fmt.Fprintf(out, "  %v\n", names)
	}
	return nil
}

// analyzeInstance prints the Section 5 instance parameters, the query
// length histogram, and Algorithm 1's report.
func analyzeInstance(out io.Writer, inst *core.Instance) error {
	p := core.Analyze(inst)
	fmt.Fprintf(out, "queries: %d   properties: %d   classifiers: %d\n",
		p.NumQueries, p.NumProperties, p.NumClassifiers)
	fmt.Fprintf(out, "max query length k = %d   max classifier length = %d\n",
		p.MaxQueryLen, p.MaxClassifierLen)
	fmt.Fprintf(out, "incidence I = %d   frequency f = %d   degree Δ = %d\n",
		p.Incidence, p.Frequency, p.Degree)
	guarantee := math.Min(
		math.Log(math.Max(float64(p.Incidence), 1))+math.Log(math.Max(float64(p.MaxQueryLen-1), 1))+1,
		math.Pow(2, float64(p.MaxQueryLen-1)),
	)
	if guarantee < 1 {
		guarantee = 1
	}
	fmt.Fprintf(out, "Algorithm 3 guarantee (Theorem 5.3): %.3f × optimal\n", guarantee)

	hist := make([]int, p.MaxQueryLen+1)
	for qi := 0; qi < inst.NumQueries(); qi++ {
		hist[inst.Query(qi).Len()]++
	}
	fmt.Fprintf(out, "length histogram:")
	for l := 1; l < len(hist); l++ {
		fmt.Fprintf(out, "  %d:%d", l, hist[l])
	}
	fmt.Fprintln(out)

	r, err := prep.Run(inst, prep.Full)
	if err != nil {
		return err
	}
	st := r.Stats
	fmt.Fprintf(out, "preprocessing: %d selected (singleton %d, zero-cost %d, forced %d, step4 %d)\n",
		len(r.Selected), st.SingletonSelected, st.ZeroCostSelected, st.Step3Selected, st.Step4Selected)
	fmt.Fprintf(out, "               %d removed (step3 %d, step4 %d)\n",
		st.Step3Removed+st.Step4Removed, st.Step3Removed, st.Step4Removed)
	fmt.Fprintf(out, "               %d/%d queries resolved, %d components\n",
		st.QueriesCovered, inst.NumQueries(), st.Components)
	return nil
}

// jsonSolution is the -json output document.
type jsonSolution struct {
	Cost        float64    `json:"cost"`
	Classifiers [][]string `json:"classifiers"`
	Queries     int        `json:"queries"`
	Seconds     float64    `json:"seconds"`
}

func writeJSONSolution(out io.Writer, inst *core.Instance, sol *core.Solution, elapsed time.Duration) error {
	doc := jsonSolution{
		Cost:        sol.Cost,
		Classifiers: textio.SolutionNames(inst, sol),
		Queries:     inst.NumQueries(),
		Seconds:     elapsed.Seconds(),
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

func buildOptions(wsc, prepStr, engine string) (solver.Options, error) {
	opts := solver.DefaultOptions()
	switch wsc {
	case "auto":
		opts.WSC = solver.WSCAuto
	case "greedy":
		opts.WSC = solver.WSCGreedy
	case "primal-dual":
		opts.WSC = solver.WSCPrimalDual
	case "lp-rounding":
		opts.WSC = solver.WSCLPRounding
	case "auto-lp":
		opts.WSC = solver.WSCAutoLP
	default:
		return opts, fmt.Errorf("unknown -wsc %q", wsc)
	}
	switch prepStr {
	case "full":
		opts.Prep = prep.Full
	case "minimal":
		opts.Prep = prep.Minimal
	default:
		return opts, fmt.Errorf("unknown -prep %q", prepStr)
	}
	switch engine {
	case "dinic":
		opts.Engine = bipartite.Dinic
	case "push-relabel":
		opts.Engine = bipartite.PushRelabel
	case "capacity-scaling":
		opts.Engine = bipartite.CapacityScaling
	default:
		return opts, fmt.Errorf("unknown -engine %q", engine)
	}
	return opts, nil
}

func pickAlgorithm(name string, inst *core.Instance) (solver.Func, error) {
	switch name {
	case "auto":
		// solver.Auto applies the k ≤ 2 gate per instance and consults the
		// dispatch head of a loaded selector model when one is attached.
		return solver.Auto, nil
	case "ktwo":
		return solver.KTwo, nil
	case "general":
		return solver.General, nil
	case "short-first":
		return solver.ShortFirst, nil
	case "exact":
		return solver.Exact, nil
	case "mixed":
		return solver.Mixed, nil
	case "property-oriented":
		return solver.PropertyOriented, nil
	case "query-oriented":
		return solver.QueryOriented, nil
	case "local-greedy":
		return solver.LocalGreedy, nil
	default:
		return nil, fmt.Errorf("unknown -algo %q", name)
	}
}
