// Command mc3replay replays a timestamped delta stream (the mc3gen -deltas
// format) against the incremental solve engine and measures what
// incrementality buys: per batch it applies the deltas through
// internal/incr — re-solving only the dirty components — and, unless
// -no-baseline, also re-solves the materialized load from scratch, checking
// that both agree on the solution cost exactly and reporting the timings
// side by side.
//
// Usage:
//
//	mc3replay -stream deltas.txt [-load instance.json] [-algo auto]
//	          [-parallel -1] [-window 1] [-uniform-cost 1] [-no-baseline]
//	          [-validate] [-json] [-out report.json]
//
// Cluster mode (see docs/CLUSTER.md):
//
//	mc3replay -cluster -stream bundle.txt [-shards 2] [-slow-shard -1]
//	          [-slow 50ms] [-hedge-quantile 0] [-hedge-requests 0]
//
// -cluster reads -stream as a session bundle (mc3gen -sessions), boots an
// in-process router + -shards shard servers (or targets a running router
// via -router URL), replays every session over HTTP, and hard-differential-
// checks the cluster's cost against a local shadow engine after every
// batch — any disagreement is a non-zero exit. -hedge-requests > 0
// additionally runs the hedging experiment: a /solve load with one shard
// slowed by -slow, measured with hedging off and on (-hedge-quantile), both
// recorded in the report.
//
// -load seeds the session with an instance file (its cost model prices all
// classifiers); without it, classifiers cost -uniform-cost. Events within
// -window seconds of stream time are applied as one batch. -json emits the
// BENCH_*.json report format (tool "mc3replay"); the default is a readable
// table plus a speedup summary.
//
// The observability flags (-spans, -log-spans, -cpuprofile, -memprofile,
// -trace, -debug-addr) work as in the other CLIs.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/incr"
	"repro/internal/obs"
	"repro/internal/selector"
	"repro/internal/solver"
	"repro/internal/textio"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "mc3replay:", err)
		os.Exit(1)
	}
}

// batchStat records one applied batch for the report.
type batchStat struct {
	time        float64 // stream time of the batch's first event
	deltas      int
	cost        float64
	components  int
	dirty       int
	incrSecs    float64
	scratchSecs float64 // NaN when -no-baseline
}

func run(args []string, out, errw io.Writer) (retErr error) {
	fs := flag.NewFlagSet("mc3replay", flag.ContinueOnError)
	var (
		streamPath  = fs.String("stream", "", "delta stream file (required; \"-\" = stdin)")
		loadPath    = fs.String("load", "", "instance file seeding the initial load and cost model")
		algo        = fs.String("algo", "auto", "algorithm: auto|general|ktwo")
		window      = fs.Float64("window", 1, "batch events within this many seconds of stream time")
		uniformCost = fs.Float64("uniform-cost", 1, "classifier cost when no -load file provides a cost model")
		noBaseline  = fs.Bool("no-baseline", false, "skip the from-scratch solve per batch (faster, no differential check)")
		parallel    = fs.Int("parallel", -1, "components solved concurrently per batch: 0 or 1 solves serially, n > 1 uses n workers, -1 (the default) uses GOMAXPROCS")
		validate    = fs.Bool("validate", false, "verify every solution against the instance")
		asJSON      = fs.Bool("json", false, "emit the BENCH_*.json report format")
		outPath     = fs.String("out", "", "output file (default stdout)")
		seed        = fs.Int64("seed", 0, "seed recorded in the JSON report")
		features    = fs.String("features", "", "harvest one JSONL feature record per applied batch into this file (see docs/OBSERVABILITY.md)")
		selPath     = fs.String("selector", "", "trained selector model (mc3bench -train-selector): skips confident set-cover engine races in re-solves (see docs/SELECTOR.md)")

		clusterMode   = fs.Bool("cluster", false, "replay -stream as a session bundle against a sharded cluster, differential-checking every batch (see docs/CLUSTER.md)")
		routerURL     = fs.String("router", "", "cluster: replay against this running router instead of booting an in-process harness")
		shards        = fs.Int("shards", 2, "cluster: shard servers in the in-process harness")
		slowShard     = fs.Int("slow-shard", -1, "cluster: inject -slow of latency in front of this shard index (-1 = none)")
		slowDelay     = fs.Duration("slow", 50*time.Millisecond, "cluster: injected latency for -slow-shard")
		hedgeQuantile = fs.Float64("hedge-quantile", 0.25, "cluster: latency quantile for the hedging experiment's hedged run (low on purpose: with one slow shard the mixed latency distribution is bimodal, and the hedge delay must sit near the fast mode)")
		hedgeRequests = fs.Int("hedge-requests", 0, "cluster: /solve requests per hedging-experiment run (0 skips the experiment)")
	)
	var obsCfg obs.CLIConfig
	obsCfg.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *streamPath == "" {
		return fmt.Errorf("-stream is required")
	}
	if *window <= 0 {
		return fmt.Errorf("-window must be positive, got %v", *window)
	}
	obsCLI, err := obsCfg.Start()
	if err != nil {
		return err
	}
	defer func() {
		if cerr := obsCLI.Close(); cerr != nil && retErr == nil {
			retErr = cerr
		}
	}()

	if *clusterMode {
		return runCluster(clusterArgs{
			streamPath:    *streamPath,
			routerURL:     *routerURL,
			shards:        *shards,
			slowShard:     *slowShard,
			slowDelay:     *slowDelay,
			hedgeQuantile: *hedgeQuantile,
			hedgeRequests: *hedgeRequests,
			algo:          *algo,
			window:        *window,
			uniformCost:   *uniformCost,
			parallel:      *parallel,
			validate:      *validate,
			asJSON:        *asJSON,
			outPath:       *outPath,
			seed:          *seed,
		}, out, errw)
	}

	deltas, err := readStream(*streamPath)
	if err != nil {
		return err
	}
	if len(deltas) == 0 {
		return fmt.Errorf("stream %s has no events", *streamPath)
	}

	// Assemble the engine: universe + cost model from -load when given.
	u := core.NewUniverse()
	var cm core.CostModel = core.UniformCost(*uniformCost)
	var initial []incr.Delta
	if *loadPath != "" {
		f, err := os.Open(*loadPath)
		if err != nil {
			return err
		}
		file, err := textio.Read(f)
		f.Close()
		if err != nil {
			return err
		}
		cm = file.CostModelFor(u)
		for _, q := range file.Queries {
			initial = append(initial, incr.Add(q...))
		}
	}
	tracer := obsCLI.Tracer
	if *features != "" {
		f, err := os.Create(*features)
		if err != nil {
			return fmt.Errorf("-features: %w", err)
		}
		defer func() {
			if cerr := f.Close(); cerr != nil && retErr == nil {
				retErr = cerr
			}
		}()
		tracer = tracer.WithSink(obs.NewHarvestSink(f, "mc3replay"))
	}
	opts := solver.DefaultOptions()
	opts.Validate = *validate
	opts.Parallelism = *parallel
	if *selPath != "" {
		model, err := selector.Load(*selPath)
		if err != nil {
			return err
		}
		opts.Selector = model
	}
	engine, err := incr.New(incr.Config{
		Costs:    cm,
		Universe: u,
		Algo:     *algo,
		Options:  opts,
		Tracer:   tracer,
	})
	if err != nil {
		return err
	}

	ctx := context.Background()
	start := time.Now()
	if len(initial) > 0 {
		if _, err := engine.Apply(ctx, initial); err != nil {
			return fmt.Errorf("installing -load instance: %w", err)
		}
		fmt.Fprintf(errw, "mc3replay: installed %d initial queries from %s\n", len(initial), *loadPath)
	}

	stats, err := replay(ctx, engine, tracer, deltas, *window, *algo, opts, !*noBaseline)
	if err != nil {
		return err
	}

	tab := buildTable(stats)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if *asJSON {
		rep := &bench.Report{
			Tool: "mc3replay", Generated: time.Now().UTC(),
			Seed: *seed, Seeds: 1, Repeats: 1,
		}
		rep.AddTable(tab, time.Since(start))
		rep.TotalSeconds = time.Since(start).Seconds()
		return rep.Write(out)
	}
	tab.Render(out)
	renderSummary(out, engine, stats)
	return nil
}

// readStream loads the delta stream from path ("-" = stdin).
func readStream(path string) ([]incr.Delta, error) {
	if path == "-" {
		return incr.ReadDeltaStream(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return incr.ReadDeltaStream(f)
}

// replay applies the stream batch by batch. With baseline set, every batch
// is followed by a from-scratch solve of the materialized load under the
// same options, and the two costs must agree exactly. Each batch runs under
// a "replay.batch" span carrying the batch index, sizes, and timings, so the
// engine's "incr.apply" span nests under it and trace consumers (the feature
// harvester in particular) see replay runs with full batch context.
func replay(ctx context.Context, engine *incr.Engine, tracer *obs.Tracer, deltas []incr.Delta, window float64, algo string, opts solver.Options, baseline bool) ([]batchStat, error) {
	var stats []batchStat
	for lo := 0; lo < len(deltas); {
		hi := lo + 1
		for hi < len(deltas) && deltas[hi].Time < deltas[lo].Time+window {
			hi++
		}
		sp, sctx := obs.StartSpan(ctx, tracer, "replay.batch",
			obs.Int("batch", len(stats)), obs.Int("deltas", hi-lo),
			obs.F64("stream_time", deltas[lo].Time))
		res, err := engine.Apply(sctx, deltas[lo:hi])
		if err != nil {
			sp.EndErr(err)
			return nil, fmt.Errorf("batch at t=%gs: %w", deltas[lo].Time, err)
		}
		st := batchStat{
			time:        deltas[lo].Time,
			deltas:      res.Deltas,
			cost:        res.Cost,
			components:  res.Components,
			dirty:       res.Dirty,
			incrSecs:    res.Seconds,
			scratchSecs: math.NaN(),
		}
		sp.SetAttr(obs.Int("components", res.Components), obs.Int("dirty", res.Dirty),
			obs.F64("cost", res.Cost), obs.I64("incremental_ns", int64(res.Seconds*1e9)))
		if baseline {
			secs, cost, err := solveFromScratch(ctx, engine, algo, opts)
			if err != nil {
				sp.EndErr(err)
				return nil, fmt.Errorf("baseline at t=%gs: %w", deltas[lo].Time, err)
			}
			st.scratchSecs = secs
			sp.SetAttr(obs.I64("baseline_ns", int64(secs*1e9)))
			if cost != res.Cost {
				err := fmt.Errorf("differential mismatch at t=%gs: incremental cost %v, from-scratch cost %v",
					deltas[lo].Time, res.Cost, cost)
				sp.EndErr(err)
				return nil, err
			}
		}
		sp.End()
		stats = append(stats, st)
		lo = hi
	}
	return stats, nil
}

// solveFromScratch materializes the engine's live load and solves it whole,
// uncached — the cost an application without the incremental engine would
// pay on every change.
func solveFromScratch(ctx context.Context, engine *incr.Engine, algo string, opts solver.Options) (secs, cost float64, err error) {
	qs := engine.QuerySets()
	if len(qs) == 0 {
		return 0, 0, nil
	}
	inst, err := core.NewInstance(engine.Universe(), qs, engine.CostModel(), core.Options{})
	if err != nil {
		return 0, 0, err
	}
	fn := solver.General
	if algo == incr.AlgoKTwo || (algo != incr.AlgoGeneral && inst.MaxQueryLen() <= 2) {
		fn = solver.KTwo
	}
	opts.Context = ctx
	opts.Cache = nil
	opts.AmbientQueryLen = 0
	start := time.Now()
	sol, err := fn(inst, opts)
	if err != nil {
		return 0, 0, err
	}
	return time.Since(start).Seconds(), sol.Cost, nil
}

// buildTable shapes the batch records as a bench table: the incremental and
// from-scratch wall times side by side, with the dirty-vs-total component
// counts that explain the gap.
func buildTable(stats []batchStat) *bench.Table {
	tab := &bench.Table{
		ID:     "replay",
		Title:  "incremental vs from-scratch re-solve per delta batch",
		XLabel: "t(s)",
		Unit:   "mixed (seconds / counts / cost)",
		Notes:  "incremental_seconds re-solves dirty components only; fromscratch_seconds solves the whole materialized load uncached",
	}
	series := []bench.Series{
		{Name: "deltas"}, {Name: "components"}, {Name: "dirty_components"},
		{Name: "incremental_seconds"}, {Name: "fromscratch_seconds"}, {Name: "cost"},
	}
	for _, st := range stats {
		tab.XValues = append(tab.XValues, fmt.Sprintf("%g", st.time))
		series[0].Values = append(series[0].Values, float64(st.deltas))
		series[1].Values = append(series[1].Values, float64(st.components))
		series[2].Values = append(series[2].Values, float64(st.dirty))
		series[3].Values = append(series[3].Values, st.incrSecs)
		series[4].Values = append(series[4].Values, st.scratchSecs)
		series[5].Values = append(series[5].Values, st.cost)
	}
	tab.Series = series
	return tab
}

// renderSummary prints the aggregate speedup under the table.
func renderSummary(w io.Writer, engine *incr.Engine, stats []batchStat) {
	var incSecs, scratch float64
	var dirty, comps int64
	haveBaseline := false
	for _, st := range stats {
		incSecs += st.incrSecs
		dirty += int64(st.dirty)
		comps += int64(st.components)
		if !math.IsNaN(st.scratchSecs) {
			scratch += st.scratchSecs
			haveBaseline = true
		}
	}
	fmt.Fprintf(w, "\n%d batches: %.3fs incremental", len(stats), incSecs)
	if haveBaseline {
		speedup := math.Inf(1)
		if incSecs > 0 {
			speedup = scratch / incSecs
		}
		fmt.Fprintf(w, ", %.3fs from-scratch (%.1fx speedup)", scratch, speedup)
	}
	if comps > 0 {
		fmt.Fprintf(w, "; dirtied %d of %d component-batches (%.1f%%)", dirty, comps, 100*float64(dirty)/float64(comps))
	}
	est := engine.Stats()
	fmt.Fprintf(w, "\nengine: %d applies, %d deltas, %d splits, %d merges; cache: %d hits / %d misses\n",
		est.Applies, est.Deltas, est.Splits, est.Merges, engine.CacheStats().Hits, engine.CacheStats().Misses)
}
