package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/incr"
)

// writeStream writes a delta stream to a temp file and returns its path.
func writeStream(t *testing.T, deltas []incr.Delta) string {
	t.Helper()
	var buf bytes.Buffer
	if err := incr.WriteDeltaStream(&buf, deltas); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "stream.txt")
	if err := os.WriteFile(path, buf.Bytes(), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

// sparseStream builds several disjoint components up front, then touches only
// one of them: the incremental engine should re-solve a single dirty
// component per later batch.
func sparseStream(t *testing.T) string {
	t.Helper()
	deltas := []incr.Delta{
		{Time: 0, Op: incr.OpAdd, Props: []string{"a", "b"}},
		{Time: 0, Op: incr.OpAdd, Props: []string{"c", "d"}},
		{Time: 0, Op: incr.OpAdd, Props: []string{"e", "f"}},
		{Time: 0, Op: incr.OpAdd, Props: []string{"g", "h"}},
		{Time: 2, Op: incr.OpAdd, Props: []string{"a", "b"}},
		{Time: 4, Op: incr.OpUpdateCost, Props: []string{"a"}, Cost: 3},
		{Time: 6, Op: incr.OpAdd, Props: []string{"a"}},
		{Time: 8, Op: incr.OpRemove, Props: []string{"a", "b"}},
	}
	return writeStream(t, deltas)
}

func TestReplayTableOutput(t *testing.T) {
	var out, errw bytes.Buffer
	err := run([]string{"-stream", sparseStream(t), "-window", "1"}, &out, &errw)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"incremental_seconds", "fromscratch_seconds", "dirty_components", "speedup", "batches"} {
		if !strings.Contains(text, want) {
			t.Errorf("output lacks %q:\n%s", want, text)
		}
	}
}

func TestReplayJSONReportShowsLocality(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "BENCH_replay.json")
	var stdout bytes.Buffer
	err := run([]string{"-stream", sparseStream(t), "-window", "1",
		"-json", "-out", outPath, "-validate"}, &stdout, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Tool        string `json:"tool"`
		Experiments []struct {
			ID     string `json:"id"`
			Series []struct {
				Name   string     `json:"name"`
				Values []*float64 `json:"values"`
			} `json:"series"`
		} `json:"experiments"`
		TotalSeconds float64 `json:"total_seconds"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, raw)
	}
	if rep.Tool != "mc3replay" {
		t.Errorf("tool = %q, want mc3replay", rep.Tool)
	}
	if len(rep.Experiments) != 1 || rep.Experiments[0].ID != "replay" {
		t.Fatalf("experiments = %+v", rep.Experiments)
	}
	series := map[string][]*float64{}
	for _, s := range rep.Experiments[0].Series {
		series[s.Name] = s.Values
	}
	for _, name := range []string{"components", "dirty_components", "incremental_seconds", "fromscratch_seconds", "cost"} {
		if len(series[name]) == 0 {
			t.Fatalf("report lacks series %q", name)
		}
	}

	// On the sparse tail batches (single-component touches against a
	// multi-component load), dirty must stay below the component count.
	comps, dirty := series["components"], series["dirty_components"]
	sawLocality := false
	for i := range comps {
		if comps[i] == nil || dirty[i] == nil {
			t.Fatalf("batch %d: null component counts", i)
		}
		if *dirty[i] > *comps[i] {
			t.Errorf("batch %d: dirty %g > components %g", i, *dirty[i], *comps[i])
		}
		if *comps[i] > 1 && *dirty[i] < *comps[i] {
			sawLocality = true
		}
	}
	if !sawLocality {
		t.Error("no batch re-solved fewer components than the total: locality not demonstrated")
	}
	// Both timing series must be populated (baseline enabled by default).
	for i, v := range series["fromscratch_seconds"] {
		if v == nil {
			t.Errorf("batch %d: from-scratch timing missing", i)
		}
	}
}

func TestReplayWithLoadFile(t *testing.T) {
	dir := t.TempDir()
	loadPath := filepath.Join(dir, "inst.json")
	instance := `{
		"queries": [["team:juventus","color:white","brand:adidas"], ["team:chelsea","brand:adidas"]],
		"default_cost": 10,
		"costs": {
			"brand:adidas": 4, "color:white": 5, "team:chelsea": 7, "team:juventus": 6,
			"brand:adidas|color:white": 8, "brand:adidas|team:chelsea": 9
		}
	}`
	if err := os.WriteFile(loadPath, []byte(instance), 0o600); err != nil {
		t.Fatal(err)
	}
	stream := writeStream(t, []incr.Delta{
		{Time: 0, Op: incr.OpAdd, Props: []string{"color:white", "brand:adidas"}},
		{Time: 1, Op: incr.OpUpdateCost, Props: []string{"brand:adidas"}, Cost: 2},
		{Time: 2, Op: incr.OpRemove, Props: []string{"team:chelsea", "brand:adidas"}},
	})
	var out, errw bytes.Buffer
	err := run([]string{"-stream", stream, "-load", loadPath, "-algo", "general", "-validate"}, &out, &errw)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errw.String(), "installed 2 initial queries") {
		t.Errorf("load note missing: %s", errw.String())
	}
}

func TestReplayParallelFlag(t *testing.T) {
	// The replay's built-in differential check (incremental vs from-scratch
	// per batch) runs under whatever -parallel selects, so a green run at
	// each setting is itself a cost-identity proof for the stream.
	for _, par := range []string{"1", "2", "-1"} {
		var out bytes.Buffer
		err := run([]string{"-stream", sparseStream(t), "-window", "1", "-parallel", par}, &out, io.Discard)
		if err != nil {
			t.Fatalf("-parallel %s: %v", par, err)
		}
	}
}

func TestReplayNoBaseline(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-stream", sparseStream(t), "-no-baseline"}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "speedup") {
		t.Errorf("summary reports a speedup without a baseline:\n%s", out.String())
	}
}

func TestReplayErrors(t *testing.T) {
	empty := filepath.Join(t.TempDir(), "empty.txt")
	if err := os.WriteFile(empty, []byte("# nothing\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(t.TempDir(), "bad.txt")
	if err := os.WriteFile(bad, []byte("1 rm ghost\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	cases := [][]string{
		{},                               // -stream required
		{"-stream", "/nonexistent"},      // unreadable stream
		{"-stream", empty},               // no events
		{"-stream", bad},                 // remove of an absent query
		{"-stream", bad, "-window", "0"}, // bad window
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out, io.Discard); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}

// TestReplayFeatureHarvest checks the -features wiring: every applied batch
// yields one "apply" JSONL record carrying the batch index and — with the
// baseline enabled — the from-scratch timing, so replay runs feed the same
// harvest pipeline as mc3bench and mc3serve.
func TestReplayFeatureHarvest(t *testing.T) {
	featPath := filepath.Join(t.TempDir(), "features.jsonl")
	var out bytes.Buffer
	err := run([]string{"-stream", sparseStream(t), "-window", "1", "-features", featPath}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(featPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	applies := 0
	for i, line := range lines {
		var rec struct {
			Kind          string `json:"kind"`
			Source        string `json:"source"`
			Batch         *int64 `json:"batch"`
			Deltas        int64  `json:"deltas"`
			Nanos         int64  `json:"ns"`
			BaselineNanos int64  `json:"baseline_ns"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d not JSON: %v", i, err)
		}
		if rec.Source != "mc3replay" {
			t.Errorf("line %d source = %q", i, rec.Source)
		}
		if rec.Kind != "apply" {
			continue // component records from per-component re-solves are fine
		}
		if rec.Batch == nil || *rec.Batch != int64(applies) {
			t.Errorf("apply %d has batch %v, want %d", applies, rec.Batch, applies)
		}
		if rec.Deltas <= 0 {
			t.Errorf("apply %d has no deltas", applies)
		}
		if rec.BaselineNanos <= 0 {
			t.Errorf("apply %d lacks the baseline timing", applies)
		}
		applies++
	}
	// sparseStream batches at t=0,2,4,6,8 under -window 1.
	if applies != 5 {
		t.Errorf("harvested %d apply records, want 5:\n%s", applies, raw)
	}
}

// clusterBundle writes a small two-session bundle to a temp file.
func clusterBundle(t *testing.T) string {
	t.Helper()
	var buf bytes.Buffer
	err := incr.WriteSessionBundle(&buf, []incr.SessionStream{
		{Name: "s1", Deltas: []incr.Delta{
			{Time: 0, Op: incr.OpAdd, Props: []string{"a", "b"}},
			{Time: 0, Op: incr.OpAdd, Props: []string{"c", "d"}},
			{Time: 2, Op: incr.OpAdd, Props: []string{"a", "b"}},
			{Time: 4, Op: incr.OpUpdateCost, Props: []string{"a"}, Cost: 3},
			{Time: 6, Op: incr.OpRemove, Props: []string{"a", "b"}},
		}},
		{Name: "s2", Deltas: []incr.Delta{
			{Time: 0, Op: incr.OpAdd, Props: []string{"x", "y"}},
			{Time: 2, Op: incr.OpAdd, Props: []string{"y", "z"}},
			{Time: 4, Op: incr.OpRemove, Props: []string{"x", "y"}},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bundle.txt")
	if err := os.WriteFile(path, buf.Bytes(), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestReplayClusterMode drives the -cluster CLI end to end: in-process
// harness (router + 2 shards), per-batch differential, JSON report with the
// cluster_replay table.
func TestReplayClusterMode(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "BENCH_cluster.json")
	var stdout bytes.Buffer
	err := run([]string{"-cluster", "-stream", clusterBundle(t), "-shards", "2",
		"-window", "1", "-json", "-out", outPath}, &stdout, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Experiments []struct {
			ID     string `json:"id"`
			Series []struct {
				Name   string    `json:"name"`
				Values []float64 `json:"values"`
			} `json:"series"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Experiments) != 1 || rep.Experiments[0].ID != "cluster_replay" {
		t.Fatalf("report experiments = %+v, want one cluster_replay table", rep.Experiments)
	}
	var hasCost bool
	for _, s := range rep.Experiments[0].Series {
		if s.Name == "cost" && len(s.Values) > 0 {
			hasCost = true
		}
	}
	if !hasCost {
		t.Fatalf("cluster_replay table lacks a populated cost series: %s", raw)
	}
}

// TestReplayClusterTextOutput: -cluster without -json renders the table and
// the differential summary goes to stderr.
func TestReplayClusterTextOutput(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-cluster", "-stream", clusterBundle(t), "-shards", "2"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "cluster replay") {
		t.Errorf("text output lacks the cluster table:\n%s", out.String())
	}
	if !strings.Contains(errw.String(), "differential clean") {
		t.Errorf("stderr lacks the differential summary:\n%s", errw.String())
	}
}
