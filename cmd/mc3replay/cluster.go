package main

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/incr"
	"repro/internal/serve"
)

// clusterArgs carries the -cluster flag set into runCluster.
type clusterArgs struct {
	streamPath    string
	routerURL     string
	shards        int
	slowShard     int
	slowDelay     time.Duration
	hedgeQuantile float64
	hedgeRequests int
	algo          string
	window        float64
	uniformCost   float64
	parallel      int
	validate      bool
	asJSON        bool
	outPath       string
	seed          int64
}

// runCluster replays a session bundle against a sharded cluster with the
// per-batch differential check, and optionally runs the hedging experiment.
// Differential failures (cluster cost != shadow engine cost on any batch)
// return an error, so the process exits non-zero — the CI smoke gate.
func runCluster(a clusterArgs, out, errw io.Writer) error {
	bundle, err := readBundle(a.streamPath)
	if err != nil {
		return err
	}
	if len(bundle) == 0 {
		return fmt.Errorf("bundle %s has no sessions", a.streamPath)
	}
	ctx := context.Background()
	start := time.Now()

	routerURL := a.routerURL
	var h *cluster.Harness
	if routerURL == "" {
		// In-process fleet: real TCP listeners, shared-nothing shard caches.
		h, err = cluster.StartHarness(cluster.HarnessConfig{
			Shards:      a.shards,
			ShardConfig: shardConfig(a),
			SlowShard:   -1,
		})
		if err != nil {
			return err
		}
		defer h.Close()
		routerURL = h.RouterURL()
		fmt.Fprintf(errw, "mc3replay: cluster harness up — router %s, %d shard(s)\n", routerURL, a.shards)
	} else {
		fmt.Fprintf(errw, "mc3replay: replaying against external router %s\n", routerURL)
	}

	res, err := cluster.ReplayBundle(ctx, cluster.ReplayConfig{
		RouterURL:   routerURL,
		Algo:        clusterAlgo(a.algo),
		Window:      a.window,
		UniformCost: a.uniformCost,
		Parallel:    a.parallel,
		Validate:    a.validate,
		Log:         errw,
	}, bundle)
	if err != nil {
		return fmt.Errorf("cluster differential: %w", err)
	}
	fmt.Fprintf(errw, "mc3replay: differential clean — %d sessions, %d batches, %d failover reload(s); every batch cost matches the shadow engine exactly\n",
		res.Sessions, len(res.Batches), res.Reloads)

	var hedge *hedgeOutcome
	if a.hedgeRequests > 0 {
		if a.routerURL != "" {
			return fmt.Errorf("the hedging experiment needs the in-process harness (drop -router)")
		}
		hedge, err = runHedgeExperiment(ctx, a, bundle, errw)
		if err != nil {
			return err
		}
	}

	tabs := []*bench.Table{buildClusterTable(res)}
	if hedge != nil {
		tabs = append(tabs, buildHedgeTable(hedge))
	}
	if a.outPath != "" {
		f, err := os.Create(a.outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if a.asJSON {
		rep := &bench.Report{
			Tool: "mc3replay", Generated: time.Now().UTC(),
			Seed: a.seed, Seeds: 1, Repeats: 1,
		}
		for _, tab := range tabs {
			rep.AddTable(tab, time.Since(start))
		}
		rep.TotalSeconds = time.Since(start).Seconds()
		return rep.Write(out)
	}
	for _, tab := range tabs {
		tab.Render(out)
	}
	if hedge != nil {
		fmt.Fprintf(out, "\nhedging: p99 %.1fms off -> %.1fms on (%d hedges, %d wins)\n",
			1e3*hedge.off.P99, 1e3*hedge.on.P99, hedge.hedges, hedge.wins)
	}
	return nil
}

// readBundle loads a session bundle from path ("-" = stdin).
func readBundle(path string) ([]incr.SessionStream, error) {
	if path == "-" {
		return incr.ReadSessionBundle(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return incr.ReadSessionBundle(f)
}

// shardConfig builds the shard server configuration from the replay flags.
func shardConfig(a clusterArgs) serve.Config {
	cfg := serve.DefaultConfig()
	cfg.Parallel = a.parallel
	cfg.Validate = a.validate
	cfg.Flight = 0 // replay harness shards skip the flight recorder
	return cfg
}

// clusterAlgo restricts -algo to the session vocabulary (the cluster path
// is all sessions; the solver-only names fall back to auto).
func clusterAlgo(algo string) string {
	switch algo {
	case incr.AlgoGeneral, incr.AlgoKTwo:
		return algo
	}
	return incr.AlgoAuto
}

// hedgeOutcome is the hedging experiment's result pair.
type hedgeOutcome struct {
	off, on *cluster.LoadStats
	hedges  int64
	wins    int64
}

// runHedgeExperiment measures /solve tail latency against a fleet with one
// shard slowed by injected latency, once with hedging off and once with it
// on. Each run gets a fresh harness (identical shard config) and a warmup
// pass that also feeds the router's latency histogram, so the hedged run's
// delay quantile is warm before measurement starts.
func runHedgeExperiment(ctx context.Context, a clusterArgs, bundle []incr.SessionStream, errw io.Writer) (*hedgeOutcome, error) {
	bodies, err := hedgeBodies(a, bundle)
	if err != nil {
		return nil, err
	}
	slow := a.slowShard
	if slow < 0 {
		slow = 0
	}
	run := func(quantile float64) (*cluster.LoadStats, int64, int64, error) {
		h, err := cluster.StartHarness(cluster.HarnessConfig{
			Shards:      a.shards,
			ShardConfig: shardConfig(a),
			SlowShard:   slow,
			SlowDelay:   a.slowDelay,
			Router: cluster.RouterConfig{
				HedgeQuantile: quantile,
			},
		})
		if err != nil {
			return nil, 0, 0, err
		}
		defer h.Close()
		client := &http.Client{}
		// Warmup: fill shard caches and the router's latency histogram.
		warm := 2 * len(bodies)
		if warm < 32 {
			warm = 32
		}
		if _, err := cluster.SolveLoad(ctx, client, h.RouterURL(), bodies, warm); err != nil {
			return nil, 0, 0, err
		}
		st, err := cluster.SolveLoad(ctx, client, h.RouterURL(), bodies, a.hedgeRequests)
		if err != nil {
			return nil, 0, 0, err
		}
		rst := h.Router().Stats()
		return st, rst.Hedges, rst.HedgeWins, nil
	}

	off, _, _, err := run(0)
	if err != nil {
		return nil, fmt.Errorf("hedging-off run: %w", err)
	}
	on, hedges, wins, err := run(a.hedgeQuantile)
	if err != nil {
		return nil, fmt.Errorf("hedging-on run: %w", err)
	}
	fmt.Fprintf(errw, "mc3replay: hedge experiment — p99 %.1fms off, %.1fms on (slow shard +%v, %d hedges, %d wins)\n",
		1e3*off.P99, 1e3*on.P99, a.slowDelay, hedges, wins)
	return &hedgeOutcome{off: off, on: on, hedges: hedges, wins: wins}, nil
}

// hedgeBodies materializes distinct /solve payloads from the bundle's added
// queries, so the load run spreads across shards.
func hedgeBodies(a clusterArgs, bundle []incr.SessionStream) ([][]byte, error) {
	var queries [][]string
	seen := map[string]bool{}
	for _, ss := range bundle {
		for _, d := range ss.Deltas {
			if d.Op != incr.OpAdd {
				continue
			}
			key := fmt.Sprint(d.Props)
			if seen[key] {
				continue
			}
			seen[key] = true
			queries = append(queries, d.Props)
			if len(queries) >= 64 {
				break
			}
		}
	}
	return cluster.SolveBodies(queries, a.uniformCost, 32)
}

// buildClusterTable shapes the replay records as a bench table.
func buildClusterTable(res *cluster.ReplayResult) *bench.Table {
	tab := &bench.Table{
		ID:     "cluster_replay",
		Title:  "cluster replay: per-batch cost (differential-checked) and latency",
		XLabel: "session:batch",
		Unit:   "mixed (seconds / counts / cost)",
		Notes:  "router_seconds is the HTTP round-trip through the router; every batch's cost matched a local shadow incremental engine exactly; reloaded=1 marks batches delivered via failover reload",
	}
	series := []bench.Series{
		{Name: "deltas"}, {Name: "cost"},
		{Name: "router_seconds"}, {Name: "shadow_seconds"}, {Name: "reloaded"},
	}
	for _, b := range res.Batches {
		tab.XValues = append(tab.XValues, fmt.Sprintf("%s:%d", b.Session, b.Batch))
		series[0].Values = append(series[0].Values, float64(b.Deltas))
		series[1].Values = append(series[1].Values, b.Cost)
		series[2].Values = append(series[2].Values, b.RouterSecs)
		series[3].Values = append(series[3].Values, b.ShadowSecs)
		reloaded := 0.0
		if b.Reloaded {
			reloaded = 1
		}
		series[4].Values = append(series[4].Values, reloaded)
	}
	tab.Series = series
	return tab
}

// buildHedgeTable shapes the hedging experiment as a bench table.
func buildHedgeTable(h *hedgeOutcome) *bench.Table {
	tab := &bench.Table{
		ID:     "cluster_hedge",
		Title:  "router /solve latency with one slow shard: hedging off vs on",
		XLabel: "hedging",
		Unit:   "seconds (counts for hedges/wins)",
		Notes:  "one shard slowed by injected latency; the hedged run re-issues requests outliving the configured latency quantile to the next replica",
	}
	series := []bench.Series{
		{Name: "p50_seconds"}, {Name: "p95_seconds"}, {Name: "p99_seconds"},
		{Name: "mean_seconds"}, {Name: "hedges"}, {Name: "hedge_wins"},
	}
	for i, st := range []*cluster.LoadStats{h.off, h.on} {
		label := "off"
		hedges, wins := 0.0, 0.0
		if i == 1 {
			label = "on"
			hedges, wins = float64(h.hedges), float64(h.wins)
		}
		tab.XValues = append(tab.XValues, label)
		series[0].Values = append(series[0].Values, st.P50)
		series[1].Values = append(series[1].Values, st.P95)
		series[2].Values = append(series[2].Values, st.P99)
		series[3].Values = append(series[3].Values, st.Mean)
		series[4].Values = append(series[4].Values, hedges)
		series[5].Values = append(series[5].Values, wins)
	}
	tab.Series = series
	return tab
}
