package mc3

// Benchmark harness: one benchmark per paper table/figure (each wraps the
// corresponding experiment runner from internal/bench at a reduced but
// representative scale — run cmd/mc3bench for the full paper-scale suite)
// plus micro-benchmarks of the core pipeline stages.

import (
	"context"
	"fmt"
	"io"
	"testing"

	"repro/internal/bench"
	"repro/internal/incr"
	"repro/internal/prep"
	"repro/internal/solver"
	"repro/internal/workload"
)

// benchCfg is the scale used by the `go test -bench` harness.
func benchCfg() bench.Config {
	return bench.Config{
		Seed:           1,
		BBSizes:        []int{250, 1000},
		PShortSizes:    []int{1000, 4000},
		PSizes:         []int{2500, 10000},
		SyntheticSizes: []int{1000, 10000},
		Repeats:        1,
	}
}

func runExperiment(b *testing.B, fn func(bench.Config) (*bench.Table, error)) {
	b.Helper()
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		tab, err := fn(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			tab.Render(io.Discard)
		}
	}
}

// BenchmarkTable1Datasets regenerates Table 1 (dataset summary).
func BenchmarkTable1Datasets(b *testing.B) { runExperiment(b, bench.Table1) }

// BenchmarkFigure3a regenerates Figure 3a (BestBuy, uniform costs: MC3[S] =
// Mixed < Query-Oriented < Property-Oriented).
func BenchmarkFigure3a(b *testing.B) { runExperiment(b, bench.Figure3a) }

// BenchmarkFigure3b regenerates Figure 3b (Private short queries, varying
// costs: MC3[S] optimal, baselines trail).
func BenchmarkFigure3b(b *testing.B) { runExperiment(b, bench.Figure3b) }

// BenchmarkFigure3c regenerates Figure 3c (MC3[S] runtime, with/without
// preprocessing).
func BenchmarkFigure3c(b *testing.B) { runExperiment(b, bench.Figure3c) }

// BenchmarkFigure3d regenerates Figure 3d (Private general queries: MC3[G]
// best overall; Short-First wins the fashion slice).
func BenchmarkFigure3d(b *testing.B) { runExperiment(b, bench.Figure3d) }

// BenchmarkFigure3e regenerates Figure 3e (MC3[G] solution cost with/without
// preprocessing).
func BenchmarkFigure3e(b *testing.B) { runExperiment(b, bench.Figure3e) }

// BenchmarkFigure3f regenerates Figure 3f (MC3[G] runtime with/without
// preprocessing).
func BenchmarkFigure3f(b *testing.B) { runExperiment(b, bench.Figure3f) }

// BenchmarkAblationWSC compares Algorithm 3's set-cover engines.
func BenchmarkAblationWSC(b *testing.B) { runExperiment(b, bench.AblationWSC) }

// BenchmarkAblationEngine compares Dinic and push-relabel inside Algorithm 2.
func BenchmarkAblationEngine(b *testing.B) { runExperiment(b, bench.AblationEngine) }

// BenchmarkAblationPrepSteps reports Algorithm 1's per-step contributions.
func BenchmarkAblationPrepSteps(b *testing.B) { runExperiment(b, bench.AblationPrepSteps) }

// BenchmarkAblationLPPrep measures preprocessing's effect with a real LP in
// the loop.
func BenchmarkAblationLPPrep(b *testing.B) { runExperiment(b, bench.AblationLPPrep) }

// ---- Pipeline micro-benchmarks ----

// BenchmarkInstanceBuild measures classifier-universe enumeration.
func BenchmarkInstanceBuild(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			d := workload.Synthetic(n, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := d.Instance(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPreprocessing measures Algorithm 1 on synthetic loads.
func BenchmarkPreprocessing(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			d := workload.Synthetic(n, 1)
			inst, err := d.Instance()
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := prep.Run(inst, prep.Full); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkKTwoSolve measures the exact k = 2 solver end to end.
func BenchmarkKTwoSolve(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			d := workload.SyntheticShort(n, 1)
			inst, err := d.Instance()
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := solver.KTwo(inst, solver.DefaultOptions()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGeneralSolve measures Algorithm 3 end to end.
func BenchmarkGeneralSolve(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			d := workload.Synthetic(n, 1)
			inst, err := d.Instance()
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := solver.General(inst, solver.DefaultOptions()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Scheduler benchmarks ----
//
// Multi-component loads dispatched serially vs through the work-stealing
// scheduler at GOMAXPROCS workers. Compare within a machine:
//
//	go test -bench 'Sched' -count 5 . | tee bench-new.txt && benchstat bench-old.txt bench-new.txt

// benchMultiCompInstance builds a load of `groups` property-disjoint
// components, each a chain of 6 overlapping length-qlen queries — enough
// independent work per solve for parallel dispatch to matter.
func benchMultiCompInstance(tb testing.TB, groups, qlen int) *Instance {
	tb.Helper()
	u := NewUniverse()
	var queries []PropSet
	for g := 0; g < groups; g++ {
		for q := 0; q < 6; q++ {
			names := make([]string, 0, qlen)
			for l := 0; l < qlen; l++ {
				names = append(names, fmt.Sprintf("g%d_p%d", g, q+l))
			}
			queries = append(queries, u.Set(names...))
		}
	}
	cm := CostFunc(func(s PropSet) float64 { return float64(1 + 2*s.Len()) })
	inst, err := NewInstance(u, queries, cm, InstanceOptions{})
	if err != nil {
		tb.Fatal(err)
	}
	return inst
}

// schedParallelisms are the dispatch settings the scheduler benchmarks
// compare: serial and the GOMAXPROCS-wide worker pool.
var schedParallelisms = []struct {
	name string
	par  int
}{{"par=1", 1}, {"par=-1", -1}}

// BenchmarkSchedGeneralSolve measures Algorithm 3 over 32 independent
// components, serial vs work-stealing dispatch.
func BenchmarkSchedGeneralSolve(b *testing.B) {
	inst := benchMultiCompInstance(b, 32, 3)
	for _, tc := range schedParallelisms {
		b.Run(tc.name, func(b *testing.B) {
			opts := solver.DefaultOptions()
			opts.Parallelism = tc.par
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := solver.General(inst, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSchedKTwoSolve measures Algorithm 2 over 32 independent
// components, serial vs work-stealing dispatch.
func BenchmarkSchedKTwoSolve(b *testing.B) {
	inst := benchMultiCompInstance(b, 32, 2)
	for _, tc := range schedParallelisms {
		b.Run(tc.name, func(b *testing.B) {
			opts := solver.DefaultOptions()
			opts.Parallelism = tc.par
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := solver.KTwo(inst, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSchedIncrApply measures the incremental engine re-solving every
// component of a 32-component load per Apply (alternating cost updates,
// uncached so each re-solve is real work), serial vs work-stealing dispatch.
func BenchmarkSchedIncrApply(b *testing.B) {
	const groups = 32
	for _, tc := range schedParallelisms {
		b.Run(tc.name, func(b *testing.B) {
			opts := solver.DefaultOptions()
			opts.Parallelism = tc.par
			e, err := incr.New(incr.Config{Costs: CostFunc(func(s PropSet) float64 { return float64(1 + 2*s.Len()) }), Options: opts, NoCache: true})
			if err != nil {
				b.Fatal(err)
			}
			var init []incr.Delta
			for g := 0; g < groups; g++ {
				for q := 0; q < 6; q++ {
					init = append(init, incr.Add(fmt.Sprintf("g%d_p%d", g, q), fmt.Sprintf("g%d_p%d", g, q+1)))
				}
			}
			ctx := context.Background()
			if _, err := e.Apply(ctx, init); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Re-price one singleton in every component: the whole load
				// goes dirty and every component re-solves.
				batch := make([]incr.Delta, groups)
				for g := 0; g < groups; g++ {
					batch[g] = incr.UpdateCost(float64(3+i%2), fmt.Sprintf("g%d_p0", g))
				}
				if _, err := e.Apply(ctx, batch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLocalGreedy measures the Local-Greedy baseline.
func BenchmarkLocalGreedy(b *testing.B) {
	d := workload.Synthetic(1000, 1)
	inst, err := d.Instance()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.LocalGreedy(inst, solver.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}
