package mc3

import (
	"repro/internal/nlq"
)

// Vocabulary translates free-text queries into conjunctive property sets —
// the front end of the paper's pipeline ("translated by the e-commerce
// application, e.g., via NLP-based methods", Section 1). Register attribute
// values and synonyms, then Parse user queries.
type Vocabulary = nlq.Vocabulary

// NewVocabulary returns an empty query vocabulary interning into u.
func NewVocabulary(u *Universe) *Vocabulary { return nlq.NewVocabulary(u) }

// QuerySQL renders a conjunctive property query as the SELECT statement of
// the paper's introduction. Properties must follow the "attr:value" naming
// convention.
func QuerySQL(u *Universe, table string, q PropSet) (string, error) {
	return nlq.SQL(u, table, q)
}
