#!/usr/bin/env sh
# Streaming smoke gate (docs/STREAMING.md): generate a query log with the
# streaming generator, solve it three ways — materialized (mc3gen -log →
# mc3solve -in), streamed finish-only, and streamed with mid-stream sealing —
# and fail unless all three land on the identical cost. A fourth run
# exercises the sampling path end to end (its cost is an upper bound, gated
# only for feasibility ≥ exact). Finishes with the in-process stream-mem
# differential, which hard-fails on any cost mismatch between the
# NewInstance and SolveStream arms.
#
# Usage: scripts/stream-smoke.sh [outdir] [queries]   (default: ./stream-smoke 50000)
set -eu

OUT=${1:-stream-smoke}
N=${2:-50000}
PARTS=8
# One partition stretch: the smallest seal window that provably never
# triggers a sealed-property reappearance on a sequential partitioned stream.
WINDOW=$((N / PARTS))
mkdir -p "$OUT"
BIN=$OUT/bin
mkdir -p "$BIN"

echo "== building binaries"
go build -o "$BIN" ./cmd/mc3gen ./cmd/mc3solve ./cmd/mc3bench

echo "== streaming a $N-query log ($PARTS partitions)"
"$BIN/mc3gen" -stream -queries "$N" -partitions "$PARTS" -seed 7 -out "$OUT/q.log"

echo "== arm 1: materialized whole-load solve (mc3gen -log -> mc3solve -in)"
"$BIN/mc3gen" -log "$OUT/q.log" -log-cost 1 -out "$OUT/inst.json"
MAT=$("$BIN/mc3solve" -in "$OUT/inst.json" -quiet)

echo "== arm 2: streamed solve, finish-only sealing"
FIN=$("$BIN/mc3solve" -stream "$OUT/q.log" -cost uniform:1 -quiet)

echo "== arm 3: streamed solve, mid-stream sealing (window $WINDOW)"
WIN=$("$BIN/mc3solve" -stream "$OUT/q.log" -cost uniform:1 -seal-window "$WINDOW" -quiet)

echo "materialized=$MAT finish-only=$FIN windowed=$WIN"
if [ "$MAT" != "$FIN" ] || [ "$MAT" != "$WIN" ]; then
    echo "COST DIFFERENTIAL FAILED: streamed solves disagree with the materialized solve" >&2
    exit 1
fi

echo "== arm 4: sampling path (gap 0.1) — must stay feasible, >= exact"
SAMP=$("$BIN/mc3solve" -stream "$OUT/q.log" -cost uniform:1 -gap 0.1 -sample 512 -quiet)
echo "sampled=$SAMP (exact $MAT)"
awk -v s="$SAMP" -v e="$MAT" 'BEGIN { exit (s + 1e-9 < e) ? 1 : 0 }' || {
    echo "SAMPLING FAILED: sampled cost below the exact optimum" >&2
    exit 1
}

echo "== in-process stream-mem differential (peak-heap watermark + cost gate)"
"$BIN/mc3bench" -quick -exp stream-mem -json >"$OUT/stream-mem.json"

echo "stream smoke OK (artifacts in $OUT/)"
