#!/usr/bin/env sh
# Cluster smoke gate: genuinely separate OS processes — two mc3serve shards
# and one mc3serve router — replayed against with mc3replay -cluster, which
# hard-differential-checks every batch's cost against a local incremental
# engine and exits non-zero on any disagreement. An additional in-process
# hedging run records the hedging-off-vs-on tail-latency experiment.
#
# Usage: scripts/cluster-smoke.sh [outdir]   (default: ./cluster-smoke)
set -eu

OUT=${1:-cluster-smoke}
mkdir -p "$OUT"
BIN=$OUT/bin
mkdir -p "$BIN"

echo "== building binaries"
go build -o "$BIN" ./cmd/mc3gen ./cmd/mc3serve ./cmd/mc3replay

echo "== generating the multi-session workload bundle"
"$BIN/mc3gen" -dataset synthetic -n 120 -deltas -delta-events 120 \
    -sessions 4 -seed 7 -out "$OUT/bundle.txt"

PIDS=""
cleanup() {
    for p in $PIDS; do kill "$p" 2>/dev/null || true; done
    wait 2>/dev/null || true
}
trap cleanup EXIT INT TERM

echo "== launching 2 shard processes + 1 router process"
"$BIN/mc3serve" -addr 127.0.0.1:19101 -flight 0 >"$OUT/shard1.log" 2>&1 &
PIDS="$PIDS $!"
"$BIN/mc3serve" -addr 127.0.0.1:19102 -flight 0 >"$OUT/shard2.log" 2>&1 &
PIDS="$PIDS $!"
"$BIN/mc3serve" -route 127.0.0.1:19101,127.0.0.1:19102 \
    -addr 127.0.0.1:19100 -probe-interval 200ms >"$OUT/router.log" 2>&1 &
PIDS="$PIDS $!"

echo "== waiting for the router to report ready"
i=0
until curl -fsS http://127.0.0.1:19100/readyz >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "router never became ready" >&2
        cat "$OUT"/*.log >&2 || true
        exit 1
    fi
    sleep 0.2
done

echo "== replaying the bundle through the external router (differential gate)"
"$BIN/mc3replay" -cluster -stream "$OUT/bundle.txt" \
    -router http://127.0.0.1:19100 -window 2 \
    -json -out "$OUT/cluster-replay.json"

echo "== router stats after replay"
curl -fsS http://127.0.0.1:19100/stats | tee "$OUT/router-stats.json"
echo

echo "== hedging experiment (in-process harness, one shard slowed)"
"$BIN/mc3replay" -cluster -stream "$OUT/bundle.txt" -shards 3 \
    -slow-shard 0 -slow 40ms -hedge-quantile 0.25 -hedge-requests 48 \
    -window 2 -json -out "$OUT/cluster-hedge.json"

echo "== cluster smoke clean"
